//! The frequency-grouped Merkle inverted index (paper §VI-B, Defs. 6–7) —
//! the second optimization of ImageProof.
//!
//! Images with the same frequency count in a cluster are grouped into one
//! posting: `⟨frequency, (I_1, ‖B_{I_1}‖; …; I_n, ‖B_{I_n}‖), digest⟩`. The
//! first member has the smallest L2 norm (hence the largest impact, which
//! serves as the posting's impact); the remaining members are kept in
//! document (image-id) order so the wire encoding can d-gap + varint
//! compress them (§VI-B last paragraph). Grouping shrinks the VO and the
//! number of digest reconstructions the client performs, without changing
//! the termination conditions.
//!
//! Like the ungrouped index, grouped lists are partitioned into block-max
//! blocks of [`BLOCK_SIZE`] *groups*: each block is committed as
//! `H(group-chain ‖ max_{next} ‖ h_{next})` — its own contents plus the
//! successor block's impact bound and digest — so a partially-scanned list
//! is proven by the fence block's `(max_impact, digest)` pair, already
//! committed by the last disclosed block (or the list head).

use crate::bounds::{evaluate, BoundsMode, ListSnapshot};
use crate::merkle::{block_digest, build_block_summaries, BlockSummary, BLOCK_SIZE};
use crate::search::{InvSearchResult, InvSearchStats};
use crate::verify::InvVerifyError;
use crate::vo::{FilterVo, RemainingVo};
use imageproof_akm::bovw::{impact_value, impacts_with_weights, ImpactModel, SparseBovw};
use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::Digest;
use imageproof_cuckoo::CuckooFilter;
use imageproof_parallel::{try_par_map, Concurrency};
use std::collections::{BTreeMap, BTreeSet};

/// One frequency-grouped posting.
#[derive(Clone, Debug, PartialEq)]
pub struct Group {
    /// The shared frequency count `f`.
    pub frequency: u32,
    /// `(image, ‖B_I‖)` members: `members[0]` has the smallest norm (the
    /// posting head, whose impact is the group impact); the rest ascend by
    /// image id (document order).
    pub members: Vec<(u64, f32)>,
}

impl Group {
    /// The group impact: the head member's impact (the largest in the
    /// group).
    // audit:allow(panic) Decode always reads one head member, and the verify loop rejects empty groups before scoring
    pub fn impact(&self, weight: f32) -> f32 {
        impact_value(weight, self.frequency, self.members[0].1)
    }
}

/// Digest of a grouped posting (Def. 6; the worked example in Table III
/// includes the frequency, so we bind it too).
pub fn group_digest(group: &Group, next: &Digest) -> Digest {
    let mut b = Digest::builder()
        .u32(group.frequency)
        .u64(group.members.len() as u64);
    for &(image, norm) in &group.members {
        b = b.u64(image).f32(norm);
    }
    b.digest(next).finish()
}

/// A cluster's frequency-grouped Merkle inverted list (`Γ^f_c`).
#[derive(Clone, Debug)]
pub struct GroupedList {
    pub cluster: u32,
    pub weight: f32,
    /// Groups in descending impact order.
    pub groups: Vec<Group>,
    /// Per-block summaries: `blocks[b]` covers groups
    /// `b·BLOCK_SIZE .. (b+1)·BLOCK_SIZE` (last block may be short).
    blocks: Vec<BlockSummary>,
    pub filter: CuckooFilter,
    /// `h_{Γ^f_c}` (Def. 7).
    pub digest: Digest,
    /// Build-time memo of `h(Θ)`, mirroring the ungrouped
    /// [`crate::merkle::MerkleList`] cache; `None` after
    /// [`GroupedList::clear_filter_cache`].
    filter_commit: Option<Digest>,
}

impl GroupedList {
    fn try_build(
        cluster: u32,
        weight: f32,
        by_freq: BTreeMap<u32, Vec<(u64, f32)>>,
        n_buckets: usize,
    ) -> Result<GroupedList, imageproof_cuckoo::FilterFull> {
        let mut groups: Vec<Group> = by_freq
            .into_iter()
            .map(|(frequency, mut members)| {
                // Head: smallest norm (ties: smallest id); rest: id order.
                members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                let head = members.remove(0);
                members.sort_by_key(|&(id, _)| id);
                members.insert(0, head);
                Group { frequency, members }
            })
            .collect();
        groups.sort_by(|a, b| {
            b.impact(weight)
                .total_cmp(&a.impact(weight))
                .then_with(|| a.frequency.cmp(&b.frequency))
        });

        let mut filter = CuckooFilter::with_buckets(n_buckets);
        for g in &groups {
            for &(image, _) in &g.members {
                filter.insert(image)?;
            }
        }

        let blocks = build_block_summaries(
            &groups,
            |chunk| {
                let mut h = Digest::ZERO;
                for g in chunk.iter().rev() {
                    h = group_digest(g, &h);
                }
                h
            },
            |chunk| chunk[0].impact(weight),
        );
        let (first_max, first_block) = blocks
            .first()
            .map(|b| (b.max_impact, b.digest))
            .unwrap_or((0.0, Digest::ZERO));
        let filter_commit = filter.digest();
        let digest = crate::merkle::list_digest(weight, &filter_commit, first_max, &first_block);
        Ok(GroupedList {
            cluster,
            weight,
            groups,
            blocks,
            filter,
            digest,
            filter_commit: Some(filter_commit),
        })
    }

    /// `h(Θ)` from the build-time memo when present, recomputed otherwise;
    /// the flag reports which path was taken.
    pub fn filter_digest_cached(&self) -> (Digest, bool) {
        match self.filter_commit {
            Some(d) => (d, true),
            None => (self.filter.digest(), false),
        }
    }

    /// Drops the build-time `h(Θ)` memo (equivalence-test hook).
    pub fn clear_filter_cache(&mut self) {
        self.filter_commit = None;
    }

    /// The per-block summaries, in block order.
    pub fn blocks(&self) -> &[BlockSummary] {
        &self.blocks
    }

    /// Number of group blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of groups covered by the first `b` blocks.
    pub fn group_offset(&self, b: usize) -> usize {
        (b * BLOCK_SIZE).min(self.groups.len())
    }

    /// Digest of block `b` (covering blocks `b..`), or [`Digest::ZERO`]
    /// past the end.
    pub fn block_chain_digest(&self, b: usize) -> Digest {
        self.blocks.get(b).map(|s| s.digest).unwrap_or(Digest::ZERO)
    }

    /// Total images across all groups.
    pub fn posting_count(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }
}

/// The frequency-grouped index (one list per cluster).
#[derive(Clone, Debug)]
pub struct GroupedInvertedIndex {
    lists: Vec<GroupedList>,
    n_buckets: usize,
}

impl GroupedInvertedIndex {
    /// Builds the index; mirrors
    /// [`crate::merkle::MerkleInvertedIndex::build`].
    pub fn build(
        n_clusters: usize,
        images: &[(u64, SparseBovw)],
        model: &ImpactModel,
    ) -> GroupedInvertedIndex {
        Self::build_with(n_clusters, images, model, Concurrency::serial())
    }

    /// [`GroupedInvertedIndex::build`] with per-cluster list builds fanned
    /// out across workers; deterministic for the same reasons as
    /// [`crate::merkle::MerkleInvertedIndex::build_with`].
    pub fn build_with(
        n_clusters: usize,
        images: &[(u64, SparseBovw)],
        model: &ImpactModel,
        conc: Concurrency,
    ) -> GroupedInvertedIndex {
        let mut per_cluster: Vec<BTreeMap<u32, Vec<(u64, f32)>>> =
            vec![BTreeMap::new(); n_clusters];
        let mut lengths = vec![0usize; n_clusters];
        for (image, bovw) in images {
            let norm = bovw.norm();
            for (c, f) in bovw.iter() {
                per_cluster[c as usize]
                    .entry(f)
                    .or_default()
                    .push((*image, norm));
                lengths[c as usize] += 1;
            }
        }
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut n_buckets = imageproof_cuckoo::buckets_for_capacity(max_len);
        loop {
            let built: Result<Vec<GroupedList>, _> =
                try_par_map(conc, &per_cluster, |c, by_freq| {
                    GroupedList::try_build(
                        c as u32,
                        model.weight(c as u32),
                        by_freq.clone(),
                        n_buckets,
                    )
                });
            match built {
                Ok(lists) => return GroupedInvertedIndex { lists, n_buckets },
                Err(_) => n_buckets *= 2,
            }
        }
    }

    pub fn list(&self, cluster: u32) -> &GroupedList {
        &self.lists[cluster as usize]
    }

    pub fn lists(&self) -> &[GroupedList] {
        &self.lists
    }

    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Per-cluster `h_{Γ^f}` digests for MRKD leaf embedding.
    pub fn list_digests(&self) -> Vec<Digest> {
        self.lists.iter().map(|l| l.digest).collect()
    }

    /// Total images across the given clusters' lists.
    pub fn total_postings(&self, clusters: impl Iterator<Item = u32>) -> usize {
        clusters
            .map(|c| self.lists[c as usize].posting_count())
            .sum()
    }

    /// Drops every list's `h(Θ)` memo (see
    /// [`GroupedList::clear_filter_cache`]).
    pub fn clear_filter_caches(&mut self) {
        for list in &mut self.lists {
            list.clear_filter_cache();
        }
    }

    /// Owner-side incremental update: rebuilds one cluster's grouped list
    /// from `(image, frequency, norm)` entries (frozen weight, common
    /// filter geometry) and returns the new `h_Γ`.
    pub fn replace_list(
        &mut self,
        cluster: u32,
        entries: Vec<(u64, u32, f32)>,
    ) -> Result<Digest, imageproof_cuckoo::FilterFull> {
        let weight = self.lists[cluster as usize].weight;
        let mut by_freq: BTreeMap<u32, Vec<(u64, f32)>> = BTreeMap::new();
        for (image, freq, norm) in entries {
            by_freq.entry(freq).or_default().push((image, norm));
        }
        let list = GroupedList::try_build(cluster, weight, by_freq, self.n_buckets)?;
        let digest = list.digest;
        self.lists[cluster as usize] = list;
        Ok(digest)
    }
}

/// One relevant grouped list's share of the VO.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupedListVo {
    pub cluster: u32,
    pub weight: f32,
    /// Popped prefix of groups.
    pub popped: Vec<Group>,
    pub remaining: RemainingVo,
}

/// The grouped inverted-index VO.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupedInvVo {
    pub lists: Vec<GroupedListVo>,
}

impl GroupedInvVo {
    /// Total images disclosed (for the "% popped postings" metric).
    pub fn popped_postings(&self) -> usize {
        self.lists
            .iter()
            .flat_map(|l| l.popped.iter())
            .map(|g| g.members.len())
            .sum()
    }
}

impl Encode for Group {
    fn encode(&self, w: &mut Writer) {
        // Compact representation (§VI-B): varint frequency, varint member
        // count, head (varint id + norm), then d-gap varint ids + norms.
        w.varint(self.frequency as u64);
        w.varint(self.members.len() as u64);
        let (head_id, head_norm) = self.members[0];
        w.varint(head_id);
        w.f32(head_norm);
        let mut prev = 0u64;
        for &(id, norm) in &self.members[1..] {
            w.varint(id.wrapping_sub(prev));
            w.f32(norm);
            prev = id;
        }
    }
}

impl Decode for Group {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let frequency = r.varint()? as u32;
        let count = r.varint()? as usize;
        if count == 0 {
            return Err(WireError::InvalidTag(0));
        }
        let mut members = Vec::with_capacity(count.min(1 << 20));
        members.push((r.varint()?, r.f32()?));
        let mut prev = 0u64;
        for _ in 1..count {
            let id = prev.wrapping_add(r.varint()?);
            members.push((id, r.f32()?));
            prev = id;
        }
        Ok(Group { frequency, members })
    }
}

impl Encode for GroupedListVo {
    fn encode(&self, w: &mut Writer) {
        w.varint(self.cluster as u64);
        w.f32(self.weight);
        w.vseq_len(self.popped.len());
        for g in &self.popped {
            g.encode(w);
        }
        self.remaining.encode(w);
    }
}

impl Decode for GroupedListVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let cluster = u32::try_from(r.varint()?).map_err(|_| WireError::LengthOverflow)?;
        let weight = r.f32()?;
        let n = r.vseq_len()?;
        let mut popped = Vec::with_capacity(n);
        for _ in 0..n {
            popped.push(Group::decode(r)?);
        }
        let remaining = RemainingVo::decode(r)?;
        Ok(GroupedListVo {
            cluster,
            weight,
            popped,
            remaining,
        })
    }
}

impl Encode for GroupedInvVo {
    fn encode(&self, w: &mut Writer) {
        w.vseq_len(self.lists.len());
        for l in &self.lists {
            l.encode(w);
        }
    }
}

impl Decode for GroupedInvVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.vseq_len()?;
        let mut lists = Vec::with_capacity(n);
        for _ in 0..n {
            lists.push(GroupedListVo::decode(r)?);
        }
        Ok(GroupedInvVo { lists })
    }
}

/// Result of a grouped authenticated search.
#[derive(Clone, Debug)]
pub struct GroupedSearchResult {
    pub topk: Vec<(u64, f32)>,
    pub vo: GroupedInvVo,
    pub stats: InvSearchStats,
}

/// Exact top-k by full accumulation over the grouped index (the grouped
/// scheme's accumulation order: lists ascending, groups in list order,
/// members in group order).
pub fn grouped_exhaustive_topk(
    index: &GroupedInvertedIndex,
    query_impacts: &[(u32, f32)],
    k: usize,
) -> Vec<(u64, f32)> {
    let mut acc: BTreeMap<u64, f32> = BTreeMap::new();
    for &(c, p_q) in query_impacts {
        let list = index.list(c);
        for g in &list.groups {
            for &(image, norm) in &g.members {
                *acc.entry(image).or_insert(0.0) +=
                    p_q * impact_value(list.weight, g.frequency, norm);
            }
        }
    }
    let mut scored: Vec<(u64, f32)> = acc.into_iter().collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

struct GroupedState<'a> {
    list: &'a GroupedList,
    query_impact: f32,
    /// Expanded `(image, impact)` pairs, in group order.
    expanded: Vec<(u64, f32)>,
    /// `offsets[g]` = number of expanded pairs covered by the first `g`
    /// groups.
    offsets: Vec<usize>,
    /// Whole group-blocks popped (mirrors the ungrouped block-granular
    /// state).
    popped_blocks: usize,
    working_filter: Option<CuckooFilter>,
}

impl GroupedState<'_> {
    fn popped_groups(&self) -> usize {
        self.list.group_offset(self.popped_blocks)
    }

    fn exhausted(&self) -> bool {
        self.popped_groups() == self.list.groups.len()
    }

    /// The fence block's authenticated `max_impact`.
    fn remaining_cap(&self) -> Option<f32> {
        self.list
            .blocks()
            .get(self.popped_blocks)
            .map(|b| b.max_impact)
    }

    /// Pops up to `n` whole blocks; returns how many groups were popped.
    fn pop_blocks(&mut self, n: usize) -> usize {
        let start = self.popped_groups();
        self.popped_blocks = (self.popped_blocks + n).min(self.list.n_blocks());
        let end = self.popped_groups();
        for g in &self.list.groups[start..end] {
            if let Some(f) = &mut self.working_filter {
                for &(image, _) in &g.members {
                    f.delete(image);
                }
            }
        }
        end - start
    }

    fn pop_until_image(&mut self, image: u64, limit: usize) -> usize {
        let mut popped = 0;
        while popped < limit && !self.exhausted() {
            let start = self.popped_groups();
            popped += self.pop_blocks(1);
            let here = self.list.groups[start..self.popped_groups()]
                .iter()
                .any(|g| g.members.iter().any(|&(i, _)| i == image));
            if here {
                break;
            }
        }
        popped
    }

    fn snapshot(&self) -> ListSnapshot<'_> {
        ListSnapshot {
            cluster: self.list.cluster,
            query_impact: self.query_impact,
            popped: &self.expanded[..self.offsets[self.popped_groups()]],
            remaining_cap: self.remaining_cap(),
            filter: if self.exhausted() {
                None
            } else {
                self.working_filter.as_ref()
            },
        }
    }
}

/// Authenticated top-k search over the grouped index (always uses the
/// cuckoo-filtered bounds — grouping is an *addition* to ImageProof).
pub fn grouped_search(
    index: &GroupedInvertedIndex,
    query_bovw: &SparseBovw,
    k: usize,
) -> GroupedSearchResult {
    let query_impacts = impacts_with_weights(query_bovw, |c| index.list(c).weight);
    let topk = grouped_exhaustive_topk(index, &query_impacts, k);
    let topk_ids: Vec<u64> = topk.iter().map(|&(i, _)| i).collect();

    let mut states: Vec<GroupedState> = query_impacts
        .iter()
        .map(|&(c, p_q)| {
            let list = index.list(c);
            let mut expanded = Vec::with_capacity(list.posting_count());
            let mut offsets = Vec::with_capacity(list.groups.len() + 1);
            offsets.push(0);
            for g in &list.groups {
                for &(image, norm) in &g.members {
                    expanded.push((image, impact_value(list.weight, g.frequency, norm)));
                }
                offsets.push(expanded.len());
            }
            GroupedState {
                list,
                query_impact: p_q,
                expanded,
                offsets,
                popped_blocks: 0,
                working_filter: Some(list.filter.clone()),
            }
        })
        .collect();

    let mut stats = InvSearchStats {
        total_postings: states.iter().map(|s| s.expanded.len()).sum(),
        ..Default::default()
    };

    // Pop every group containing a top-k image, with its predecessors —
    // rounded up to whole blocks.
    for state in &mut states {
        let last = state
            .list
            .groups
            .iter()
            .rposition(|g| g.members.iter().any(|(i, _)| topk_ids.contains(i)));
        if let Some(j) = last {
            state.pop_blocks(j / BLOCK_SIZE + 1);
        }
    }

    let mut batch = 2usize;
    loop {
        stats.rounds += 1;
        let snapshots: Vec<ListSnapshot> = states.iter().map(GroupedState::snapshot).collect();
        let eval = evaluate(&snapshots, &topk_ids, BoundsMode::CuckooFiltered);
        drop(snapshots);

        if !eval.condition1 {
            let target = best_target(&states, |_| true)
                .expect("condition 1 holds once every list is exhausted");
            states[target].pop_blocks(batch.div_ceil(BLOCK_SIZE));
            batch = (batch * 2).min(128);
            continue;
        }
        if let Some(&worst) = eval.exceeded.first() {
            let target = best_target(&states, |s| {
                s.working_filter.as_ref().is_some_and(|f| f.contains(worst))
            })
            .expect("condition 2 holds once every list is exhausted");
            states[target].pop_until_image(worst, batch);
            batch = (batch * 2).min(128);
            continue;
        }
        break;
    }
    stats.popped = states.iter().map(|s| s.offsets[s.popped_groups()]).sum();
    // `pop_blocks` clamps, so popped_blocks ≤ n_blocks holds here.
    for s in &states {
        stats.blocks_scanned += s.popped_blocks;
        stats.blocks_skipped += s.list.n_blocks() - s.popped_blocks;
    }

    // As in `inv_search`, static digests come from build-time memos and the
    // counters record the hit rate.
    let lists = states
        .iter()
        .map(|s| GroupedListVo {
            cluster: s.list.cluster,
            weight: s.list.weight,
            popped: s.list.groups[..s.popped_groups()].to_vec(),
            remaining: if s.exhausted() {
                let (filter_digest, cached) = s.list.filter_digest_cached();
                if cached {
                    stats.hashes_cached += 1;
                } else {
                    stats.hashes_computed += 1;
                }
                RemainingVo::Exhausted { filter_digest }
            } else {
                stats.hashes_cached += 1; // memoized fence summary
                let fence = s.list.blocks()[s.popped_blocks];
                RemainingVo::Skipped {
                    max_impact: fence.max_impact,
                    fence_digest: fence.digest,
                    filter: FilterVo::Bytes(s.list.filter.to_bytes()),
                }
            },
        })
        .collect();

    crate::search::record_inv_search("grouped", &stats);
    GroupedSearchResult {
        topk,
        vo: GroupedInvVo { lists },
        stats,
    }
}

fn best_target(
    states: &[GroupedState<'_>],
    mut pred: impl FnMut(&GroupedState<'_>) -> bool,
) -> Option<usize> {
    let mut best: Option<(f32, usize)> = None;
    for (i, s) in states.iter().enumerate() {
        let Some(cap) = s.remaining_cap() else {
            continue;
        };
        if !pred(s) {
            continue;
        }
        let value = s.query_impact * cap;
        if best.is_none_or(|(bv, _)| value > bv) {
            best = Some((value, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Client-side verification of a grouped VO (mirror of
/// [`crate::verify::verify_topk`]).
pub fn verify_grouped_topk(
    vo: &GroupedInvVo,
    query_bovw: &SparseBovw,
    authenticated_digests: &BTreeMap<u32, Digest>,
    claimed: &[u64],
    k: usize,
) -> Result<crate::verify::VerifiedTopk, InvVerifyError> {
    let query_clusters: Vec<u32> = query_bovw.iter().map(|(c, _)| c).collect();
    let vo_clusters: Vec<u32> = vo.lists.iter().map(|l| l.cluster).collect();
    if query_clusters != vo_clusters {
        return Err(InvVerifyError::ClusterMismatch);
    }

    let mut seen = BTreeSet::new();
    for &image in claimed {
        if !seen.insert(image) {
            return Err(InvVerifyError::DuplicateWinner { image });
        }
    }
    if claimed.len() < k {
        let all_exhausted = vo
            .lists
            .iter()
            .all(|l| matches!(l.remaining, RemainingVo::Exhausted { .. }));
        if !all_exhausted {
            return Err(InvVerifyError::ShortResult);
        }
    }

    let mut parsed_filters: Vec<Option<CuckooFilter>> = Vec::with_capacity(vo.lists.len());
    for list in &vo.lists {
        let expected =
            authenticated_digests
                .get(&list.cluster)
                .ok_or(InvVerifyError::UnknownCluster {
                    cluster: list.cluster,
                })?;
        let (seal, filter_digest, filter) = match &list.remaining {
            RemainingVo::Exhausted { filter_digest } => ((0.0, Digest::ZERO), *filter_digest, None),
            RemainingVo::Skipped {
                max_impact,
                fence_digest,
                filter: FilterVo::Bytes(bytes),
            } => {
                if !list.popped.len().is_multiple_of(BLOCK_SIZE) {
                    return Err(InvVerifyError::BlockShapeInvalid {
                        cluster: list.cluster,
                    });
                }
                let parsed =
                    CuckooFilter::from_bytes(bytes).ok_or(InvVerifyError::MalformedFilter {
                        cluster: list.cluster,
                    })?;
                ((*max_impact, *fence_digest), parsed.digest(), Some(parsed))
            }
            RemainingVo::Skipped { .. } => {
                return Err(InvVerifyError::WrongFilterForm {
                    cluster: list.cluster,
                })
            }
        };
        // Re-block the popped groups and fold block digests up to the list
        // commitment; each block digest binds its successor's (max, digest)
        // pair, so popped block bounds derive from the disclosed groups.
        let (mut max, mut bd) = seal;
        for chunk in list.popped.chunks(BLOCK_SIZE).rev() {
            let mut head = Digest::ZERO;
            for g in chunk.iter().rev() {
                if g.members.is_empty() {
                    return Err(InvVerifyError::MalformedFilter {
                        cluster: list.cluster,
                    });
                }
                head = group_digest(g, &head);
            }
            bd = block_digest(&head, max, &bd);
            // Safe: the loop above rejected empty chunks' members, and
            // `chunks` never yields an empty chunk.
            max = chunk.first().map(|g| g.impact(list.weight)).unwrap_or(0.0);
        }
        let rebuilt = crate::merkle::list_digest(list.weight, &filter_digest, max, &bd);
        if rebuilt != *expected {
            return Err(InvVerifyError::DigestMismatch {
                cluster: list.cluster,
            });
        }
        parsed_filters.push(filter);
    }

    let weights: BTreeMap<u32, f32> = vo.lists.iter().map(|l| (l.cluster, l.weight)).collect();
    let query_impacts =
        impacts_with_weights(query_bovw, |c| weights.get(&c).copied().unwrap_or(0.0));

    // Expand popped groups and delete their members from the filters.
    let mut expanded: Vec<Vec<(u64, f32)>> = Vec::with_capacity(vo.lists.len());
    for (list, filter) in vo.lists.iter().zip(&mut parsed_filters) {
        let mut pairs = Vec::new();
        for g in &list.popped {
            for &(image, norm) in &g.members {
                pairs.push((image, impact_value(list.weight, g.frequency, norm)));
                if let Some(f) = filter {
                    f.delete(image);
                }
            }
        }
        expanded.push(pairs);
    }

    let snapshots: Vec<ListSnapshot> = vo
        .lists
        .iter()
        .zip(&parsed_filters)
        .zip(&expanded)
        .zip(&query_impacts)
        .map(|(((list, filter), pairs), &(_, p_q))| ListSnapshot {
            cluster: list.cluster,
            query_impact: p_q,
            popped: pairs,
            remaining_cap: match &list.remaining {
                RemainingVo::Exhausted { .. } => None,
                // The fence bound, authenticated by the digest check above.
                RemainingVo::Skipped { max_impact, .. } => Some(*max_impact),
            },
            filter: filter.as_ref(),
        })
        .collect();

    let eval = evaluate(&snapshots, claimed, BoundsMode::CuckooFiltered);
    if !eval.condition1 {
        return Err(InvVerifyError::Condition1Failed);
    }
    if let Some(&image) = eval.exceeded.first() {
        return Err(InvVerifyError::Condition2Failed { image });
    }
    let mut topk = Vec::with_capacity(claimed.len());
    for &image in claimed {
        let score = eval
            .lower_scores
            .get(&image)
            .copied()
            .ok_or(InvVerifyError::WinnerUnsupported { image })?;
        topk.push((image, score));
    }
    Ok(crate::verify::VerifiedTopk { topk, weights })
}

/// Borrows a grouped result's `(topk, stats)` in the ungrouped result shape
/// for call sites that treat the VO opaquely.
impl From<&GroupedSearchResult> for InvSearchResult {
    fn from(g: &GroupedSearchResult) -> InvSearchResult {
        InvSearchResult {
            topk: g.topk.clone(),
            vo: crate::vo::InvVo { lists: Vec::new() },
            stats: g.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::MerkleInvertedIndex;
    use crate::search::{exhaustive_topk, inv_search};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn images(n_images: u64, n_clusters: usize, seed: u64) -> Vec<(u64, SparseBovw)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_images)
            .map(|id| {
                let pairs: Vec<(u32, u32)> = (0..rng.gen_range(3..9))
                    .map(|_| {
                        let u: f64 = rng.gen();
                        let c = ((u * u) * n_clusters as f64) as u32;
                        (c.min(n_clusters as u32 - 1), rng.gen_range(1..4))
                    })
                    .collect();
                (id, SparseBovw::from_counts(pairs))
            })
            .collect()
    }

    fn both_indexes(
        n_images: u64,
        n_clusters: usize,
        seed: u64,
    ) -> (MerkleInvertedIndex, GroupedInvertedIndex) {
        let imgs = images(n_images, n_clusters, seed);
        let encodings: Vec<SparseBovw> = imgs.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(n_clusters, &encodings);
        (
            MerkleInvertedIndex::build(n_clusters, &imgs, &model),
            GroupedInvertedIndex::build(n_clusters, &imgs, &model),
        )
    }

    fn query(seed: u64, n_clusters: usize) -> SparseBovw {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(u32, u32)> = (0..6)
            .map(|_| {
                let u: f64 = rng.gen();
                let c = ((u * u) * n_clusters as f64) as u32;
                (c.min(n_clusters as u32 - 1), rng.gen_range(1..3))
            })
            .collect();
        SparseBovw::from_counts(pairs)
    }

    #[test]
    fn grouped_topk_matches_ungrouped_topk() {
        let (plain, grouped) = both_indexes(300, 30, 31);
        for qseed in 0..4 {
            let q = query(60 + qseed, 30);
            let impacts = impacts_with_weights(&q, |c| plain.list(c).weight);
            let a = exhaustive_topk(&plain, &impacts, 10);
            let impacts_g = impacts_with_weights(&q, |c| grouped.list(c).weight);
            let b = grouped_exhaustive_topk(&grouped, &impacts_g, 10);
            let ids_a: Vec<u64> = a.iter().map(|&(i, _)| i).collect();
            let ids_b: Vec<u64> = b.iter().map(|&(i, _)| i).collect();
            assert_eq!(ids_a, ids_b, "qseed {qseed}");
        }
    }

    #[test]
    fn honest_grouped_search_verifies() {
        let (_, grouped) = both_indexes(300, 30, 32);
        let digests: BTreeMap<u32, Digest> = grouped
            .lists()
            .iter()
            .map(|l| (l.cluster, l.digest))
            .collect();
        for qseed in 0..4 {
            let q = query(70 + qseed, 30);
            let out = grouped_search(&grouped, &q, 8);
            let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
            let v = verify_grouped_topk(&out.vo, &q, &digests, &claimed, 8)
                .expect("honest grouped VO verifies");
            for ((vi, vs), (si, ss)) in v.topk.iter().zip(&out.topk) {
                assert_eq!(vi, si);
                assert_eq!(vs, ss);
            }
        }
    }

    #[test]
    fn grouped_vo_is_smaller_than_ungrouped_vo() {
        let (plain, grouped) = both_indexes(500, 20, 33);
        let mut grouped_bytes = 0usize;
        let mut plain_bytes = 0usize;
        for qseed in 0..5 {
            let q = query(80 + qseed, 20);
            grouped_bytes += grouped_search(&grouped, &q, 10).vo.wire_size();
            plain_bytes += inv_search(&plain, &q, 10, BoundsMode::CuckooFiltered)
                .vo
                .wire_size();
        }
        assert!(
            grouped_bytes < plain_bytes,
            "grouped {grouped_bytes} >= plain {plain_bytes}"
        );
    }

    #[test]
    fn grouped_vo_round_trips_on_wire() {
        let (_, grouped) = both_indexes(200, 20, 34);
        let q = query(90, 20);
        let out = grouped_search(&grouped, &q, 5);
        let bytes = out.vo.to_wire();
        assert_eq!(GroupedInvVo::from_wire(&bytes).expect("round trip"), out.vo);
        // Per-list roundtrip, covering GroupedListVo's own wire impls.
        for list in &out.vo.lists {
            assert_eq!(
                GroupedListVo::from_wire(&list.to_wire()).expect("round trip"),
                *list
            );
        }
    }

    #[test]
    fn group_heads_have_the_minimum_norm() {
        let (_, grouped) = both_indexes(300, 15, 35);
        for list in grouped.lists() {
            for g in &list.groups {
                let head_norm = g.members[0].1;
                for &(_, norm) in &g.members[1..] {
                    assert!(head_norm <= norm);
                }
            }
        }
    }

    #[test]
    fn groups_are_impact_descending() {
        let (_, grouped) = both_indexes(300, 15, 36);
        for list in grouped.lists() {
            for w in list.groups.windows(2) {
                assert!(w[0].impact(list.weight) >= w[1].impact(list.weight));
            }
        }
    }

    #[test]
    fn tampered_group_member_breaks_digest() {
        let (_, grouped) = both_indexes(200, 15, 37);
        let digests: BTreeMap<u32, Digest> = grouped
            .lists()
            .iter()
            .map(|l| (l.cluster, l.digest))
            .collect();
        let q = query(91, 15);
        let out = grouped_search(&grouped, &q, 5);
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let mut forged = out.vo.clone();
        let g = forged
            .lists
            .iter_mut()
            .find_map(|l| l.popped.first_mut())
            .expect("something popped");
        g.members[0].1 += 1.0;
        assert!(matches!(
            verify_grouped_topk(&forged, &q, &digests, &claimed, 5),
            Err(InvVerifyError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn d_gap_encoding_is_compact_for_dense_ids() {
        let g = Group {
            frequency: 2,
            members: vec![(5, 1.0), (6, 2.0), (7, 3.0), (8, 4.0)],
        };
        // freq (1) + count (1) + 4 members x (1-byte id + 4-byte norm).
        assert!(g.to_wire().len() <= 24);
    }
}
