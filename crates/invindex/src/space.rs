//! Per-structure byte accounting for the authenticated indexes.
//!
//! The figures pipeline surfaces these numbers next to latency so index
//! footprint is a tracked metric (ROADMAP item): logical bytes of posting
//! payloads, cuckoo-filter tables, authentication digests, and the
//! block-max summaries added by the blocked commitment. "Logical" means
//! the canonical serialized size of each component, not allocator
//! overhead — stable across platforms and thread counts.

use crate::grouped::GroupedInvertedIndex;
use crate::merkle::MerkleInvertedIndex;

/// Size of one [`imageproof_crypto::Digest`] on the wire.
const DIGEST_BYTES: usize = 32;

/// One posting is `u64` image id + `f32` impact.
const POSTING_BYTES: usize = 8 + 4;

/// A block summary holds `f32` max impact plus two digests.
const BLOCK_SUMMARY_BYTES: usize = 4 + 2 * DIGEST_BYTES;

/// Byte footprint of an authenticated inverted index, split by structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceUsage {
    /// Posting payloads (ids, impacts; for grouped lists: frequencies,
    /// member ids, norms).
    pub posting_bytes: usize,
    /// Cuckoo-filter tables (canonical serialization).
    pub filter_bytes: usize,
    /// Authentication digests: per-list `h_Γ` plus memoized `h(Θ)`.
    pub digest_bytes: usize,
    /// Block-max summaries (`max_impact`, chain head, block digest).
    pub block_summary_bytes: usize,
}

impl SpaceUsage {
    /// Sum over all components.
    pub fn total(&self) -> usize {
        self.posting_bytes + self.filter_bytes + self.digest_bytes + self.block_summary_bytes
    }

    /// Component-wise sum (for aggregating shards or index pairs).
    pub fn merged(&self, other: &SpaceUsage) -> SpaceUsage {
        SpaceUsage {
            posting_bytes: self.posting_bytes + other.posting_bytes,
            filter_bytes: self.filter_bytes + other.filter_bytes,
            digest_bytes: self.digest_bytes + other.digest_bytes,
            block_summary_bytes: self.block_summary_bytes + other.block_summary_bytes,
        }
    }
}

impl MerkleInvertedIndex {
    /// Logical byte footprint of the index, by structure.
    pub fn space_usage(&self) -> SpaceUsage {
        let mut u = SpaceUsage::default();
        for list in self.lists() {
            u.posting_bytes += 4 + list.postings.len() * POSTING_BYTES; // weight + postings
            u.filter_bytes += list.filter.to_bytes().len();
            u.digest_bytes += 2 * DIGEST_BYTES; // h_Γ + memoized h(Θ)
            u.block_summary_bytes += list.n_blocks() * BLOCK_SUMMARY_BYTES;
        }
        u
    }
}

impl GroupedInvertedIndex {
    /// Logical byte footprint of the grouped index, by structure.
    pub fn space_usage(&self) -> SpaceUsage {
        let mut u = SpaceUsage::default();
        for list in self.lists() {
            let group_bytes: usize = list
                .groups
                .iter()
                .map(|g| 4 + g.members.len() * POSTING_BYTES)
                .sum();
            u.posting_bytes += 4 + group_bytes; // weight + groups
            u.filter_bytes += list.filter.to_bytes().len();
            u.digest_bytes += 2 * DIGEST_BYTES;
            u.block_summary_bytes += list.n_blocks() * BLOCK_SUMMARY_BYTES;
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_akm::bovw::{ImpactModel, SparseBovw};

    fn fixtures() -> (MerkleInvertedIndex, GroupedInvertedIndex) {
        let images: Vec<(u64, SparseBovw)> = (0..40u64)
            .map(|id| {
                SparseBovw::from_counts([
                    (id as u32 % 6, 1 + id as u32 % 3),
                    ((id as u32 + 1) % 6, 1),
                ])
            })
            .enumerate()
            .map(|(i, b)| (i as u64, b))
            .collect();
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(6, &encodings);
        (
            MerkleInvertedIndex::build(6, &images, &model),
            GroupedInvertedIndex::build(6, &images, &model),
        )
    }

    #[test]
    fn space_usage_counts_every_component() {
        let (plain, grouped) = fixtures();
        let u = plain.space_usage();
        assert!(u.posting_bytes > 0);
        assert!(u.filter_bytes > 0);
        assert!(u.digest_bytes > 0);
        assert!(u.block_summary_bytes > 0);
        assert_eq!(
            u.total(),
            u.posting_bytes + u.filter_bytes + u.digest_bytes + u.block_summary_bytes
        );
        let g = grouped.space_usage();
        // Grouping never inflates the posting payload beyond the plain one
        // plus per-group frequency headers.
        assert!(g.posting_bytes <= u.posting_bytes + 4 * 6 * 40);
        assert!(g.block_summary_bytes <= u.block_summary_bytes);
    }

    #[test]
    fn merged_adds_componentwise() {
        let (plain, _) = fixtures();
        let u = plain.space_usage();
        let m = u.merged(&u);
        assert_eq!(m.total(), 2 * u.total());
        assert_eq!(m.posting_bytes, 2 * u.posting_bytes);
    }
}
