//! Termination-condition bounds for authenticated top-k search
//! (paper §IV-B2, Eqs. 9–12 and Alg. 2/3 conditions).
//!
//! Both the SP (while deciding how much to pop) and the client (while
//! verifying the final state) evaluate the *same* bounds over the *same*
//! observable state: the popped posting prefixes, the per-list remaining-
//! impact caps, and the cuckoo filters with popped images deleted. The
//! computation lives here, once, and is careful to fix every float summation
//! order so the two sides agree bit-for-bit.
//!
//! The remaining-impact cap `p̂_c` deliberately uses only client-verifiable
//! data: with block-max posting lists it is the fence block's `max_impact`,
//! which the skip proof binds into the list commitment — tighter than both
//! the last popped impact (the fence max is at most it, and usually
//! strictly below) and the cluster weight, yet exactly as sound, because a
//! forged bound changes the reconstructed `h_Γ`. A claimed "actual next
//! impact" outside the commitment would be unverifiable and unsound.

use imageproof_cuckoo::{max_count, CuckooFilter};
use std::collections::BTreeMap;

/// Which upper-bound machinery a scheme uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BoundsMode {
    /// ImageProof: cuckoo filters tighten `S^U` and `π^U` (Eqs. 11–12).
    CuckooFiltered,
    /// The Baseline of §VII (Pang & Mouratidis \[15\]): maximal bounds
    /// (Eq. 10) — every unexhausted list is assumed to contain every image.
    MaxBound,
}

/// The observable state of one relevant posting list.
pub struct ListSnapshot<'a> {
    pub cluster: u32,
    /// Query impact `p_{Q,c}` for this cluster.
    pub query_impact: f32,
    /// Popped `(image, impact)` pairs in popped order (a prefix of the
    /// owner's descending-impact order; grouped lists expand groups here).
    pub popped: &'a [(u64, f32)],
    /// Upper bound on the impact of any unpopped posting (see module docs);
    /// `None` when the list is exhausted.
    pub remaining_cap: Option<f32>,
    /// The list's cuckoo filter with popped images deleted. `Some` only for
    /// unexhausted lists under [`BoundsMode::CuckooFiltered`].
    pub filter: Option<&'a CuckooFilter>,
}

/// Bounds evaluation result.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// `s_k^L`: the smallest verified lower-bound score among the claimed
    /// top-k images.
    pub s_k_lower: f32,
    /// `π^U` (Eq. 12, or Eq. 10's `π_max` under [`BoundsMode::MaxBound`]).
    pub pi_upper: f32,
    /// `γ` from `MaxCount` (0 under [`BoundsMode::MaxBound`]).
    pub gamma: u32,
    /// Condition 1: `s_k^L ≥ π^U`.
    pub condition1: bool,
    /// Popped non-top-k images whose `S^U` exceeds `s_k^L` (condition 2
    /// holds iff this is empty), ascending by image id.
    pub exceeded: Vec<u64>,
    /// Verified lower-bound scores `S^L(Q, I)` of every popped image.
    pub lower_scores: BTreeMap<u64, f32>,
}

/// Evaluates the termination conditions over the observable state.
///
/// `snapshots` must be ordered by ascending cluster id — the summation order
/// both sides share. `topk` is the claimed result set.
pub fn evaluate(snapshots: &[ListSnapshot<'_>], topk: &[u64], mode: BoundsMode) -> Evaluation {
    debug_assert!(
        snapshots
            .iter()
            .zip(snapshots.iter().skip(1))
            .all(|(a, b)| a.cluster < b.cluster),
        "snapshots must be ascending by cluster"
    );

    // S^L (Eq. 9): accumulate popped contributions in list order.
    let mut lower_scores: BTreeMap<u64, f32> = BTreeMap::new();
    for snap in snapshots {
        for &(image, impact) in snap.popped {
            *lower_scores.entry(image).or_insert(0.0) += snap.query_impact * impact;
        }
    }

    // s_k^L: the weakest claimed winner; an image never popped scores 0.
    let mut s_k_lower = f32::INFINITY;
    for image in topk {
        let s = lower_scores.get(image).copied().unwrap_or(0.0);
        if s < s_k_lower {
            s_k_lower = s;
        }
    }
    if topk.is_empty() {
        s_k_lower = 0.0;
    }

    // Remaining-list contributions p_{Q,c} · p̂_c, descending (ties: by
    // cluster, fixing the float summation order).
    let mut remaining: Vec<(f32, u32)> = snapshots
        .iter()
        .filter_map(|s| s.remaining_cap.map(|cap| (s.query_impact * cap, s.cluster)))
        .collect();
    remaining.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

    // γ and π^U.
    let (gamma, pi_upper) = match mode {
        BoundsMode::CuckooFiltered => {
            let filters: Vec<&CuckooFilter> = snapshots.iter().filter_map(|s| s.filter).collect();
            let gamma = max_count(&filters);
            let pi: f32 = remaining.iter().take(gamma as usize).map(|&(v, _)| v).sum();
            (gamma, pi)
        }
        BoundsMode::MaxBound => {
            let pi: f32 = remaining.iter().map(|&(v, _)| v).sum();
            (0, pi)
        }
    };
    let condition1 = s_k_lower >= pi_upper;

    // Condition 2: S^U (Eq. 11 / Eq. 10) for every popped non-top-k image.
    let mut exceeded = Vec::new();
    for (&image, &lower) in &lower_scores {
        if topk.contains(&image) {
            continue;
        }
        let mut upper = lower;
        for snap in snapshots {
            let Some(cap) = snap.remaining_cap else {
                continue;
            };
            let might_contain = match mode {
                BoundsMode::CuckooFiltered => snap.filter.is_some_and(|f| f.contains(image)),
                BoundsMode::MaxBound => true,
            };
            if might_contain {
                upper += snap.query_impact * cap;
            }
        }
        if upper > s_k_lower {
            exceeded.push(image);
        }
    }

    Evaluation {
        s_k_lower,
        pi_upper,
        gamma,
        condition1,
        exceeded,
        lower_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filterless(
        cluster: u32,
        query_impact: f32,
        popped: &[(u64, f32)],
        cap: Option<f32>,
    ) -> ListSnapshot<'_> {
        ListSnapshot {
            cluster,
            query_impact,
            popped,
            remaining_cap: cap,
            filter: None,
        }
    }

    #[test]
    fn lower_scores_accumulate_across_lists() {
        let a = [(1u64, 0.5f32), (2, 0.3)];
        let b = [(1u64, 0.2f32)];
        let snaps = vec![filterless(0, 2.0, &a, None), filterless(1, 1.0, &b, None)];
        let eval = evaluate(&snaps, &[1], BoundsMode::MaxBound);
        assert_eq!(eval.lower_scores[&1], 2.0 * 0.5 + 1.0 * 0.2);
        assert_eq!(eval.lower_scores[&2], 2.0 * 0.3);
        assert_eq!(eval.s_k_lower, eval.lower_scores[&1]);
    }

    #[test]
    fn condition1_fails_while_remaining_mass_is_large() {
        let a = [(1u64, 0.5f32)];
        let snaps = vec![
            filterless(0, 1.0, &a, Some(0.4)),
            filterless(1, 1.0, &[], Some(0.9)),
        ];
        let eval = evaluate(&snaps, &[1], BoundsMode::MaxBound);
        // π^U = 0.4 + 0.9 > S^L(1) = 0.5.
        assert!(!eval.condition1);
        // Exhausting both lists flips it.
        let snaps = vec![filterless(0, 1.0, &a, None), filterless(1, 1.0, &[], None)];
        let eval = evaluate(&snaps, &[1], BoundsMode::MaxBound);
        assert!(eval.condition1);
        assert_eq!(eval.pi_upper, 0.0);
    }

    #[test]
    fn filters_tighten_pi_via_gamma() {
        // Three lists, each holding one distinct image → γ = 2·1 = 2, so
        // π^U only counts the top-2 remaining contributions.
        let mut filters = Vec::new();
        for image in [10u64, 20, 30] {
            let mut f = imageproof_cuckoo::CuckooFilter::with_buckets(8);
            f.insert(image).expect("room");
            filters.push(f);
        }
        let snaps: Vec<ListSnapshot> = filters
            .iter()
            .enumerate()
            .map(|(i, f)| ListSnapshot {
                cluster: i as u32,
                query_impact: 1.0,
                popped: &[],
                remaining_cap: Some(0.5),
                filter: Some(f),
            })
            .collect();
        let eval = evaluate(&snaps, &[], BoundsMode::CuckooFiltered);
        assert_eq!(eval.gamma, 2);
        assert_eq!(eval.pi_upper, 1.0); // two of the three 0.5 contributions
        let unfiltered_snaps: Vec<ListSnapshot> = (0..3u32)
            .map(|i| filterless(i, 1.0, &[], Some(0.5)))
            .collect();
        let unfiltered = evaluate(&unfiltered_snaps, &[], BoundsMode::MaxBound);
        assert_eq!(unfiltered.pi_upper, 1.5);
    }

    #[test]
    fn condition2_flags_images_that_could_still_win() {
        // Image 2 popped with score 0.4; list 1 unexhausted and its filter
        // contains image 2 → S^U(2) = 0.4 + 0.6 > s_k^L = 0.5.
        let mut f = imageproof_cuckoo::CuckooFilter::with_buckets(8);
        f.insert(2).expect("room");
        let a = [(1u64, 0.5f32), (2, 0.4)];
        let snaps = vec![
            ListSnapshot {
                cluster: 0,
                query_impact: 1.0,
                popped: &a,
                remaining_cap: None,
                filter: None,
            },
            ListSnapshot {
                cluster: 1,
                query_impact: 1.0,
                popped: &[],
                remaining_cap: Some(0.6),
                filter: Some(&f),
            },
        ];
        let eval = evaluate(&snaps, &[1], BoundsMode::CuckooFiltered);
        assert_eq!(eval.exceeded, vec![2]);

        // If the filter proves image 2 absent from list 1, condition 2 holds.
        let empty = imageproof_cuckoo::CuckooFilter::with_buckets(8);
        let snaps2 = vec![
            ListSnapshot {
                cluster: 0,
                query_impact: 1.0,
                popped: &a,
                remaining_cap: None,
                filter: None,
            },
            ListSnapshot {
                cluster: 1,
                query_impact: 1.0,
                popped: &[],
                remaining_cap: Some(0.6),
                filter: Some(&empty),
            },
        ];
        let eval = evaluate(&snaps2, &[1], BoundsMode::CuckooFiltered);
        assert!(eval.exceeded.is_empty());
    }

    #[test]
    fn unpopped_topk_image_gives_zero_lower_bound() {
        let snaps = vec![filterless(0, 1.0, &[], Some(0.5))];
        let eval = evaluate(&snaps, &[99], BoundsMode::MaxBound);
        assert_eq!(eval.s_k_lower, 0.0);
        assert!(!eval.condition1);
    }
}
