//! SP-side authenticated top-k search: `PostingSearch` (Alg. 3) and
//! `InvSearch` (Alg. 4), plus the §VII Baseline (\[15\]-style maximal bounds).
//!
//! The SP first computes the true top-k by full accumulation over the
//! query-relevant lists, then pops whole posting *blocks* until the
//! termination conditions (§IV-B2) — evaluated by the *shared*
//! [`crate::bounds`] module — hold on the client-observable state. Popping
//! is block-granular so every partially-scanned list ends at a block
//! boundary, where the fence block's authenticated `max_impact` is both
//! the termination cap and the skip proof: the remaining-cap the client
//! reproduces is the fence bound, strictly tighter than the old
//! last-popped-impact cap, so the loop terminates earlier (fewer popped
//! postings, smaller VO) without any change to the returned top-k. The
//! final popped state becomes the VO.

use crate::bounds::{evaluate, BoundsMode, ListSnapshot};
use crate::merkle::{MerkleInvertedIndex, MerkleList, BLOCK_SIZE};
use crate::vo::{FilterVo, InvVo, ListVo, RemainingVo};
use imageproof_akm::bovw::{impacts_with_weights, SparseBovw};
use imageproof_cuckoo::CuckooFilter;
use std::collections::BTreeMap;

/// Search-cost statistics; "% popped postings" (Figs. 9–11) is
/// `popped / total_postings`.
#[derive(Clone, Copy, Debug, Default)]
pub struct InvSearchStats {
    /// Postings disclosed in the VO.
    pub popped: usize,
    /// Total postings across the query-relevant lists.
    pub total_postings: usize,
    /// Termination-condition evaluations performed.
    pub rounds: usize,
    /// Digests the VO assembly had to run Keccak for (cache misses).
    pub hashes_computed: usize,
    /// Digests the VO assembly copied from build-time memos (block digests
    /// and filter commitments).
    pub hashes_cached: usize,
    /// Posting blocks left unscanned across the query-relevant lists —
    /// each carried by exactly one fence digest in the VO.
    pub blocks_skipped: usize,
    /// Posting blocks actually popped (disclosed in the VO).
    pub blocks_scanned: usize,
}

impl InvSearchStats {
    /// Fraction of relevant postings that had to be disclosed.
    pub fn popped_ratio(&self) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            self.popped as f64 / self.total_postings as f64
        }
    }

    /// Fraction of VO digests served from build-time memos.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.hashes_computed + self.hashes_cached;
        if total == 0 {
            0.0
        } else {
            self.hashes_cached as f64 / total as f64
        }
    }
}

/// Records one finished inverted-index search into the global
/// observability registry (no-op when recording is disabled; never affects
/// the VO). `bounds` labels the termination-bound flavor: `cuckoo`,
/// `max-bound`, or `grouped`.
pub(crate) fn record_inv_search(bounds: &'static str, stats: &InvSearchStats) {
    if !imageproof_obs::enabled() {
        return;
    }
    let reg = imageproof_obs::global();
    let labels = [("bounds", bounds)];
    reg.counter("imageproof_inv_searches_total", &labels).inc();
    reg.counter("imageproof_inv_postings_popped_total", &labels)
        .add(stats.popped as u64);
    reg.counter("imageproof_inv_rounds_total", &labels)
        .add(stats.rounds as u64);
    for (kind, n) in [
        ("skipped", stats.blocks_skipped),
        ("scanned", stats.blocks_scanned),
    ] {
        reg.counter(
            "imageproof_inv_blocks_total",
            &[("bounds", bounds), ("kind", kind)],
        )
        .add(n as u64);
    }
    for (kind, n) in [
        ("computed", stats.hashes_computed),
        ("cached", stats.hashes_cached),
    ] {
        reg.counter(
            "imageproof_inv_hashes_total",
            &[("bounds", bounds), ("kind", kind)],
        )
        .add(n as u64);
    }
}

/// Result of an authenticated top-k search.
#[derive(Clone, Debug)]
pub struct InvSearchResult {
    /// `(image, score)` descending by score (ties ascending by id).
    pub topk: Vec<(u64, f32)>,
    pub vo: InvVo,
    pub stats: InvSearchStats,
}

/// Exact top-k by full accumulation (the unauthenticated reference search;
/// also the oracle the authenticated path must reproduce).
///
/// `query_impacts` must be ascending by cluster — the summation order every
/// component shares.
pub fn exhaustive_topk(
    index: &MerkleInvertedIndex,
    query_impacts: &[(u32, f32)],
    k: usize,
) -> Vec<(u64, f32)> {
    let mut acc: BTreeMap<u64, f32> = BTreeMap::new();
    for &(c, p_q) in query_impacts {
        for posting in &index.list(c).postings {
            *acc.entry(posting.image).or_insert(0.0) += p_q * posting.impact;
        }
    }
    let mut scored: Vec<(u64, f32)> = acc.into_iter().collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Per-list mutable search state. Popping is block-granular: `popped_blocks`
/// counts whole blocks disclosed, so a partially-scanned list always ends on
/// a block boundary and its skip proof is a single fence digest.
struct ListState<'a> {
    list: &'a MerkleList,
    query_impact: f32,
    /// `(image, impact)` pairs of the whole list (posting order).
    pairs: Vec<(u64, f32)>,
    popped_blocks: usize,
    /// Working filter with popped images deleted (filtered mode only).
    working_filter: Option<CuckooFilter>,
}

impl ListState<'_> {
    fn popped_len(&self) -> usize {
        (self.popped_blocks * BLOCK_SIZE).min(self.pairs.len())
    }

    fn exhausted(&self) -> bool {
        self.popped_len() == self.pairs.len()
    }

    /// The fence block's authenticated `max_impact` — exactly what the
    /// client recomputes from the skip proof, and tighter than both the
    /// cluster weight and the last popped impact.
    fn remaining_cap(&self) -> Option<f32> {
        self.list
            .blocks()
            .get(self.popped_blocks)
            .map(|b| b.max_impact)
    }

    /// Pops up to `n` whole blocks; returns how many postings were popped.
    fn pop_blocks(&mut self, n: usize) -> usize {
        let start = self.popped_len();
        self.popped_blocks = (self.popped_blocks + n).min(self.list.n_blocks());
        let end = self.popped_len();
        for &(image, _) in &self.pairs[start..end] {
            if let Some(f) = &mut self.working_filter {
                f.delete(image);
            }
        }
        end - start
    }

    /// Pops blocks until one containing `image` has been popped (or the
    /// list is exhausted, on a filter false positive); returns how many
    /// postings were popped. `limit` bounds the postings popped this call.
    fn pop_until_image(&mut self, image: u64, limit: usize) -> usize {
        let mut popped = 0;
        while popped < limit && !self.exhausted() {
            let start = self.popped_len();
            popped += self.pop_blocks(1);
            let here = self.pairs[start..self.popped_len()]
                .iter()
                .any(|&(i, _)| i == image);
            if here {
                break;
            }
        }
        popped
    }

    fn snapshot(&self) -> ListSnapshot<'_> {
        ListSnapshot {
            cluster: self.list.cluster,
            query_impact: self.query_impact,
            popped: &self.pairs[..self.popped_len()],
            remaining_cap: self.remaining_cap(),
            filter: if self.exhausted() {
                None
            } else {
                self.working_filter.as_ref()
            },
        }
    }
}

/// Tuning knobs for the pop/check loop of `InvSearch` — exposed for the
/// ablation benchmarks (`crates/bench/benches/ablation.rs`); the defaults
/// are what the scheme implementations use.
#[derive(Clone, Copy, Debug)]
pub struct SearchTuning {
    /// Postings popped before the first termination-condition check.
    pub initial_batch: usize,
    /// Batch growth factor applied after every failed check.
    pub growth: usize,
    /// Batch ceiling.
    pub max_batch: usize,
}

impl Default for SearchTuning {
    fn default() -> Self {
        SearchTuning {
            initial_batch: 4,
            growth: 2,
            max_batch: 256,
        }
    }
}

/// `InvSearch` (Alg. 4): authenticated top-k search with VO generation.
///
/// `mode` selects the ImageProof bounds ([`BoundsMode::CuckooFiltered`]) or
/// the Baseline's maximal bounds ([`BoundsMode::MaxBound`]).
pub fn inv_search(
    index: &MerkleInvertedIndex,
    query_bovw: &SparseBovw,
    k: usize,
    mode: BoundsMode,
) -> InvSearchResult {
    inv_search_with_tuning(index, query_bovw, k, mode, SearchTuning::default())
}

/// [`inv_search`] with explicit loop tuning.
pub fn inv_search_with_tuning(
    index: &MerkleInvertedIndex,
    query_bovw: &SparseBovw,
    k: usize,
    mode: BoundsMode,
    tuning: SearchTuning,
) -> InvSearchResult {
    let query_impacts = impacts_with_weights(query_bovw, |c| index.list(c).weight);
    let topk = exhaustive_topk(index, &query_impacts, k);
    let topk_ids: Vec<u64> = topk.iter().map(|&(i, _)| i).collect();

    // Per-list state over the relevant lists, ascending by cluster.
    let mut states: Vec<ListState> = query_impacts
        .iter()
        .map(|&(c, p_q)| {
            let list = index.list(c);
            ListState {
                list,
                query_impact: p_q,
                pairs: list.postings.iter().map(|p| (p.image, p.impact)).collect(),
                popped_blocks: 0,
                working_filter: match mode {
                    BoundsMode::CuckooFiltered => Some(list.filter.clone()),
                    BoundsMode::MaxBound => None,
                },
            }
        })
        .collect();

    let mut stats = InvSearchStats {
        total_postings: states.iter().map(|s| s.pairs.len()).sum(),
        ..Default::default()
    };

    // Alg. 3 line 1: pop every posting containing a top-k image, together
    // with its preceding postings — rounded up to whole blocks.
    for state in &mut states {
        let last = state
            .pairs
            .iter()
            .rposition(|(image, _)| topk_ids.contains(image));
        if let Some(j) = last {
            stats.popped += state.pop_blocks(j / BLOCK_SIZE + 1);
        }
    }

    // Alg. 3 lines 3–9: pop until both termination conditions hold. The
    // paper batches the (expensive) condition checks after a number of pops
    // (§VII-A); we additionally grow the batch while checks keep failing so
    // heavy-popping queries stay near-linear.
    let mut batch = tuning.initial_batch.max(1);
    loop {
        stats.rounds += 1;
        let snapshots: Vec<ListSnapshot> = states.iter().map(ListState::snapshot).collect();
        let eval = evaluate(&snapshots, &topk_ids, mode);
        drop(snapshots);

        if !eval.condition1 {
            let target = best_poppable(&states, |_| true);
            let target = target.expect("condition 1 holds once every list is exhausted");
            stats.popped += states[target].pop_blocks(batch.div_ceil(BLOCK_SIZE));
            batch = (batch * tuning.growth.max(1)).min(tuning.max_batch.max(1));
            continue;
        }
        if let Some(&worst) = eval.exceeded.first() {
            // Pop toward the offending image in the list that contributes
            // most to its upper bound.
            let target = best_poppable(&states, |s| match mode {
                BoundsMode::CuckooFiltered => {
                    s.working_filter.as_ref().is_some_and(|f| f.contains(worst))
                }
                BoundsMode::MaxBound => true,
            });
            let target = target.expect("condition 2 holds once every list is exhausted");
            stats.popped += states[target].pop_until_image(worst, batch);
            batch = (batch * tuning.growth.max(1)).min(tuning.max_batch.max(1));
            continue;
        }
        break;
    }

    // Assemble the VO from the final popped state (Alg. 4 lines 2–11).
    // Static digests come from build-time memos (filter commitments, chain
    // digests) wherever the cache holds them; the counters make the hit
    // rate observable.
    let filter_digest = |s: &ListState<'_>, stats: &mut InvSearchStats| {
        let (d, cached) = s.list.filter_digest_cached();
        if cached {
            stats.hashes_cached += 1;
        } else {
            stats.hashes_computed += 1;
        }
        d
    };
    let lists = states
        .iter()
        .map(|s| ListVo {
            cluster: s.list.cluster,
            weight: s.list.weight,
            popped: s.pairs[..s.popped_len()].to_vec(),
            remaining: if s.exhausted() {
                RemainingVo::Exhausted {
                    filter_digest: filter_digest(s, &mut stats),
                }
            } else {
                // Fence block pair: bound and digest are memoized in the
                // block summary — no Keccak at query time.
                stats.hashes_cached += 1;
                let fence = s.list.blocks()[s.popped_blocks];
                RemainingVo::Skipped {
                    max_impact: fence.max_impact,
                    fence_digest: fence.digest,
                    filter: match mode {
                        BoundsMode::CuckooFiltered => FilterVo::Bytes(s.list.filter.to_bytes()),
                        BoundsMode::MaxBound => FilterVo::DigestOnly(filter_digest(s, &mut stats)),
                    },
                }
            },
        })
        .collect();
    // `pop_blocks` clamps, so popped_blocks ≤ n_blocks holds here.
    for s in &states {
        stats.blocks_scanned += s.popped_blocks;
        stats.blocks_skipped += s.list.n_blocks() - s.popped_blocks;
    }

    record_inv_search(
        match mode {
            BoundsMode::CuckooFiltered => "cuckoo",
            BoundsMode::MaxBound => "max-bound",
        },
        &stats,
    );
    InvSearchResult {
        topk,
        vo: InvVo { lists },
        stats,
    }
}

/// Index of the unexhausted list with the largest remaining contribution
/// `p_{Q,c} · p̂_c` among those satisfying `pred`.
fn best_poppable(
    states: &[ListState<'_>],
    mut pred: impl FnMut(&ListState<'_>) -> bool,
) -> Option<usize> {
    let mut best: Option<(f32, usize)> = None;
    for (i, s) in states.iter().enumerate() {
        let Some(cap) = s.remaining_cap() else {
            continue;
        };
        if !pred(s) {
            continue;
        }
        let value = s.query_impact * cap;
        if best.is_none_or(|(bv, _)| value > bv) {
            best = Some((value, i));
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_akm::bovw::ImpactModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A synthetic corpus with Zipfian cluster popularity.
    fn corpus(n_images: u64, n_clusters: usize, seed: u64) -> MerkleInvertedIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let images: Vec<(u64, SparseBovw)> = (0..n_images)
            .map(|id| {
                let n_words = rng.gen_range(3..10);
                let pairs: Vec<(u32, u32)> = (0..n_words)
                    .map(|_| {
                        // Squared-uniform skews towards low cluster ids.
                        let u: f64 = rng.gen();
                        let c = ((u * u) * n_clusters as f64) as u32;
                        (c.min(n_clusters as u32 - 1), rng.gen_range(1..4))
                    })
                    .collect();
                (id, SparseBovw::from_counts(pairs))
            })
            .collect();
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(n_clusters, &encodings);
        MerkleInvertedIndex::build(n_clusters, &images, &model)
    }

    fn query(seed: u64, n_clusters: usize) -> SparseBovw {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(u32, u32)> = (0..6)
            .map(|_| {
                let u: f64 = rng.gen();
                let c = ((u * u) * n_clusters as f64) as u32;
                (c.min(n_clusters as u32 - 1), rng.gen_range(1..3))
            })
            .collect();
        SparseBovw::from_counts(pairs)
    }

    #[test]
    fn authenticated_topk_matches_exhaustive_oracle() {
        let idx = corpus(300, 40, 1);
        for qseed in 0..5 {
            let q = query(qseed, 40);
            let impacts = impacts_with_weights(&q, |c| idx.list(c).weight);
            let oracle = exhaustive_topk(&idx, &impacts, 10);
            for mode in [BoundsMode::CuckooFiltered, BoundsMode::MaxBound] {
                let got = inv_search(&idx, &q, 10, mode);
                assert_eq!(got.topk, oracle, "qseed {qseed} mode {mode:?}");
            }
        }
    }

    #[test]
    fn filtered_search_pops_fewer_postings_than_baseline() {
        let idx = corpus(400, 30, 2);
        let mut filtered_total = 0usize;
        let mut baseline_total = 0usize;
        for qseed in 0..5 {
            let q = query(100 + qseed, 30);
            filtered_total += inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered)
                .stats
                .popped;
            baseline_total += inv_search(&idx, &q, 5, BoundsMode::MaxBound).stats.popped;
        }
        assert!(
            filtered_total <= baseline_total,
            "filters must not increase popping: {filtered_total} > {baseline_total}"
        );
    }

    #[test]
    fn baseline_pops_nearly_everything() {
        // The paper observes [15]'s loose bounds force popping almost all
        // postings.
        let idx = corpus(300, 30, 3);
        let q = query(7, 30);
        let out = inv_search(&idx, &q, 10, BoundsMode::MaxBound);
        assert!(
            out.stats.popped_ratio() > 0.5,
            "expected heavy popping, got {}",
            out.stats.popped_ratio()
        );
    }

    #[test]
    fn topk_images_always_fully_popped() {
        let idx = corpus(200, 25, 4);
        let q = query(9, 25);
        let out = inv_search(&idx, &q, 8, BoundsMode::CuckooFiltered);
        // Every posting of every winner must be disclosed (Alg. 3 line 1).
        for (image, _) in &out.topk {
            for list_vo in &out.vo.lists {
                let list = idx.list(list_vo.cluster);
                let in_list = list.postings.iter().any(|p| p.image == *image);
                if in_list {
                    assert!(
                        list_vo.popped.iter().any(|&(i, _)| i == *image),
                        "winner {image} hidden in cluster {}",
                        list_vo.cluster
                    );
                }
            }
        }
    }

    #[test]
    fn vo_lists_cover_exactly_the_query_clusters() {
        let idx = corpus(200, 25, 5);
        let q = query(11, 25);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let vo_clusters: Vec<u32> = out.vo.lists.iter().map(|l| l.cluster).collect();
        let query_clusters: Vec<u32> = q.iter().map(|(c, _)| c).collect();
        assert_eq!(vo_clusters, query_clusters);
    }

    #[test]
    fn small_k_pops_less_than_large_k() {
        let idx = corpus(400, 30, 6);
        let q = query(13, 30);
        let small = inv_search(&idx, &q, 1, BoundsMode::CuckooFiltered);
        let large = inv_search(&idx, &q, 50, BoundsMode::CuckooFiltered);
        assert!(small.stats.popped <= large.stats.popped);
    }

    #[test]
    fn k_larger_than_matches_returns_all_and_exhausts() {
        let idx = corpus(20, 10, 7);
        let q = query(15, 10);
        let out = inv_search(&idx, &q, 1000, BoundsMode::CuckooFiltered);
        assert!(out.topk.len() < 1000);
        for l in &out.vo.lists {
            assert!(
                matches!(l.remaining, RemainingVo::Exhausted { .. }),
                "all lists must be fully popped when k exceeds matches"
            );
        }
    }

    #[test]
    fn empty_query_list_is_handled() {
        // A query touching a cluster with no postings.
        let idx = corpus(50, 10, 8);
        // Find an empty cluster if any; otherwise craft a query on cluster 9
        // anyway (the search must not panic either way).
        let q = SparseBovw::from_counts([(9u32, 1u32)]);
        let out = inv_search(&idx, &q, 3, BoundsMode::CuckooFiltered);
        assert!(out.topk.len() <= 3);
    }
}
