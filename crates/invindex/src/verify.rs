//! Client-side verification of authenticated top-k search
//! (paper §IV-B2 "Verification").
//!
//! The client holds: the verified BoVW vector `B_Q` (from MRKD
//! verification), the authenticated per-cluster list digests `h_{Γ_c}`
//! (bound into the MRKD leaf digests), the claimed top-k image ids, and the
//! inverted-index VO. It:
//!
//! 1. checks the VO covers exactly the query-relevant clusters;
//! 2. reconstructs every `h_{Γ_c}` from the popped prefix (re-blocked into
//!    [`BLOCK_SIZE`] chunks), the fence block's `(max_impact, digest)`
//!    pair, the weight, and the filter (bytes or digest) and compares with the
//!    authenticated digest — this authenticates weights, popped postings,
//!    their order, the per-block `max_impact` bounds, and the filters in
//!    one shot;
//! 3. recomputes `p_Q` from `B_Q` and the verified weights;
//! 4. deletes popped images from the filters and re-evaluates the
//!    termination conditions with the shared [`crate::bounds`] logic,
//!    using the *authenticated* fence `max_impact` as each unexhausted
//!    list's remaining cap — exactly the cap the SP's block-max skip test
//!    used, so a block whose bound could still beat the k-th score can
//!    never be silently skipped.
//!
//! Success proves the claimed set is a genuine top-k (Def. 1).

use crate::bounds::{evaluate, BoundsMode, ListSnapshot};
use crate::merkle::{block_digest, list_digest, posting_digest, Posting, BLOCK_SIZE};
use crate::vo::{FilterVo, InvVo, RemainingVo};
use imageproof_akm::bovw::{impacts_with_weights, SparseBovw};
use imageproof_crypto::Digest;
use imageproof_cuckoo::CuckooFilter;
use std::collections::{BTreeMap, BTreeSet};

/// Why an inverted-index VO was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvVerifyError {
    /// VO lists do not match the query-relevant clusters.
    ClusterMismatch,
    /// A reconstructed list digest differs from the authenticated `h_Γ`.
    DigestMismatch { cluster: u32 },
    /// No authenticated digest is known for a cluster in the VO.
    UnknownCluster { cluster: u32 },
    /// The filter bytes in the VO are not a canonical serialization.
    MalformedFilter { cluster: u32 },
    /// The filter form does not match the scheme (bytes vs digest-only).
    WrongFilterForm { cluster: u32 },
    /// A skip proof rides on a popped prefix that is not a whole number of
    /// blocks — the VO cannot have come from a block-granular search.
    BlockShapeInvalid { cluster: u32 },
    /// Termination condition 1 fails: an unpopped image could still beat the
    /// claimed winners.
    Condition1Failed,
    /// Termination condition 2 fails for this popped image.
    Condition2Failed { image: u64 },
    /// A claimed winner never appears in any popped posting.
    WinnerUnsupported { image: u64 },
    /// Claimed winners are not distinct.
    DuplicateWinner { image: u64 },
    /// Fewer than `k` winners claimed while undisclosed postings remain.
    ShortResult,
}

impl std::fmt::Display for InvVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvVerifyError::ClusterMismatch => {
                write!(f, "VO lists do not match the query clusters")
            }
            InvVerifyError::DigestMismatch { cluster } => {
                write!(f, "list digest mismatch for cluster {cluster}")
            }
            InvVerifyError::UnknownCluster { cluster } => {
                write!(f, "no authenticated digest for cluster {cluster}")
            }
            InvVerifyError::MalformedFilter { cluster } => {
                write!(f, "malformed filter bytes for cluster {cluster}")
            }
            InvVerifyError::WrongFilterForm { cluster } => {
                write!(f, "unexpected filter form for cluster {cluster}")
            }
            InvVerifyError::BlockShapeInvalid { cluster } => {
                write!(
                    f,
                    "skip proof on a non-block-aligned popped prefix for cluster {cluster}"
                )
            }
            InvVerifyError::Condition1Failed => {
                write!(
                    f,
                    "termination condition 1 fails: unexplored postings could win"
                )
            }
            InvVerifyError::Condition2Failed { image } => {
                write!(f, "termination condition 2 fails for image {image}")
            }
            InvVerifyError::WinnerUnsupported { image } => {
                write!(f, "claimed winner {image} has no popped posting")
            }
            InvVerifyError::DuplicateWinner { image } => {
                write!(f, "winner {image} claimed twice")
            }
            InvVerifyError::ShortResult => {
                write!(f, "fewer than k winners while postings remain undisclosed")
            }
        }
    }
}

impl std::error::Error for InvVerifyError {}

/// The verified outcome: winners with their proven lower-bound scores.
#[derive(Debug, Clone)]
pub struct VerifiedTopk {
    /// `(image, verified score)` in the claimed order.
    pub topk: Vec<(u64, f32)>,
    /// Verified cluster weights (available for diagnostics).
    pub weights: BTreeMap<u32, f32>,
}

/// Verifies an inverted-index VO against the claimed top-k.
///
/// * `query_bovw` — the BoVW vector the client itself rebuilt from verified
///   MRKD assignments;
/// * `authenticated_digests` — `h_{Γ_c}` per cluster, from MRKD leaf
///   disclosures (`VerifiedBovw::inv_digests`);
/// * `claimed` — the SP's top-k image ids (order irrelevant to soundness);
/// * `k` — the requested result size;
/// * `mode` — bounds machinery of the scheme in use.
pub fn verify_topk(
    vo: &InvVo,
    query_bovw: &SparseBovw,
    authenticated_digests: &BTreeMap<u32, Digest>,
    claimed: &[u64],
    k: usize,
    mode: BoundsMode,
) -> Result<VerifiedTopk, InvVerifyError> {
    // 1. The VO must cover exactly the query-relevant clusters, ascending.
    let query_clusters: Vec<u32> = query_bovw.iter().map(|(c, _)| c).collect();
    let vo_clusters: Vec<u32> = vo.lists.iter().map(|l| l.cluster).collect();
    if query_clusters != vo_clusters {
        return Err(InvVerifyError::ClusterMismatch);
    }

    // Claimed winners must be distinct and either fill k or be provably all
    // that exists (every list exhausted).
    let mut seen = BTreeSet::new();
    for &image in claimed {
        if !seen.insert(image) {
            return Err(InvVerifyError::DuplicateWinner { image });
        }
    }
    if claimed.len() < k {
        let all_exhausted = vo
            .lists
            .iter()
            .all(|l| matches!(l.remaining, RemainingVo::Exhausted { .. }));
        if !all_exhausted {
            return Err(InvVerifyError::ShortResult);
        }
    }

    // 2. Reconstruct and check every list digest; parse filters.
    let mut parsed_filters: Vec<Option<CuckooFilter>> = Vec::with_capacity(vo.lists.len());
    for list in &vo.lists {
        let expected =
            authenticated_digests
                .get(&list.cluster)
                .ok_or(InvVerifyError::UnknownCluster {
                    cluster: list.cluster,
                })?;

        let (seal, filter_digest, filter) = match &list.remaining {
            RemainingVo::Exhausted { filter_digest } => ((0.0, Digest::ZERO), *filter_digest, None),
            RemainingVo::Skipped {
                max_impact,
                fence_digest,
                filter,
            } => {
                // A skip proof only re-seals the list when the popped
                // prefix ends on a block boundary.
                if !list.popped.len().is_multiple_of(BLOCK_SIZE) {
                    return Err(InvVerifyError::BlockShapeInvalid {
                        cluster: list.cluster,
                    });
                }
                let (fd, parsed) = match (filter, mode) {
                    (FilterVo::Bytes(bytes), BoundsMode::CuckooFiltered) => {
                        let parsed = CuckooFilter::from_bytes(bytes).ok_or(
                            InvVerifyError::MalformedFilter {
                                cluster: list.cluster,
                            },
                        )?;
                        (parsed.digest(), Some(parsed))
                    }
                    (FilterVo::DigestOnly(d), BoundsMode::MaxBound) => (*d, None),
                    _ => {
                        return Err(InvVerifyError::WrongFilterForm {
                            cluster: list.cluster,
                        })
                    }
                };
                // The fence `(max_impact, digest)` pair seeds the fold;
                // matching `h_Γ` below simultaneously proves the skip
                // bound and every unscanned block, because each popped
                // block's digest commits its successor's pair.
                ((*max_impact, *fence_digest), fd, parsed)
            }
        };

        // Rebuild the first block's (max, digest) pair from the popped
        // prefix: re-block into BLOCK_SIZE chunks, fold each chunk's
        // posting chain, and bind the *successor's* bound/digest pair into
        // each block digest — popped block bounds are just each chunk's
        // first disclosed impact.
        let (mut max, mut bd) = seal;
        for chunk in list.popped.chunks(BLOCK_SIZE).rev() {
            let mut head = Digest::ZERO;
            for &(image, impact) in chunk.iter().rev() {
                head = posting_digest(&Posting { image, impact }, &head);
            }
            bd = block_digest(&head, max, &bd);
            max = chunk.first().map(|&(_, impact)| impact).unwrap_or(0.0);
        }
        let rebuilt = list_digest(list.weight, &filter_digest, max, &bd);
        if rebuilt != *expected {
            return Err(InvVerifyError::DigestMismatch {
                cluster: list.cluster,
            });
        }
        parsed_filters.push(filter);
    }

    // 3. p_Q from the verified weights.
    let weights: BTreeMap<u32, f32> = vo.lists.iter().map(|l| (l.cluster, l.weight)).collect();
    let query_impacts =
        impacts_with_weights(query_bovw, |c| weights.get(&c).copied().unwrap_or(0.0));

    // 4. Delete popped images from the filters, snapshot, evaluate.
    for (list, filter) in vo.lists.iter().zip(&mut parsed_filters) {
        if let Some(f) = filter {
            for &(image, _) in &list.popped {
                f.delete(image);
            }
        }
    }
    let snapshots: Vec<ListSnapshot> = vo
        .lists
        .iter()
        .zip(&parsed_filters)
        .zip(&query_impacts)
        .map(|((list, filter), &(cluster, p_q))| {
            debug_assert_eq!(cluster, list.cluster);
            ListSnapshot {
                cluster: list.cluster,
                query_impact: p_q,
                popped: &list.popped,
                remaining_cap: match &list.remaining {
                    RemainingVo::Exhausted { .. } => None,
                    // The fence bound, authenticated by the digest check
                    // above — the same cap the SP terminated under.
                    RemainingVo::Skipped { max_impact, .. } => Some(*max_impact),
                },
                filter: filter.as_ref(),
            }
        })
        .collect();

    let eval = evaluate(&snapshots, claimed, mode);
    if !eval.condition1 {
        return Err(InvVerifyError::Condition1Failed);
    }
    if let Some(&image) = eval.exceeded.first() {
        return Err(InvVerifyError::Condition2Failed { image });
    }
    let mut topk = Vec::with_capacity(claimed.len());
    for &image in claimed {
        let score = eval
            .lower_scores
            .get(&image)
            .copied()
            .ok_or(InvVerifyError::WinnerUnsupported { image })?;
        topk.push((image, score));
    }

    Ok(VerifiedTopk { topk, weights })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::MerkleInvertedIndex;
    use crate::search::inv_search;
    use imageproof_akm::bovw::ImpactModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n_images: u64, n_clusters: usize, seed: u64) -> MerkleInvertedIndex {
        let mut rng = StdRng::seed_from_u64(seed);
        let images: Vec<(u64, SparseBovw)> = (0..n_images)
            .map(|id| {
                let pairs: Vec<(u32, u32)> = (0..rng.gen_range(3..9))
                    .map(|_| {
                        let u: f64 = rng.gen();
                        let c = ((u * u) * n_clusters as f64) as u32;
                        (c.min(n_clusters as u32 - 1), rng.gen_range(1..4))
                    })
                    .collect();
                (id, SparseBovw::from_counts(pairs))
            })
            .collect();
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(n_clusters, &encodings);
        MerkleInvertedIndex::build(n_clusters, &images, &model)
    }

    fn digests_of(idx: &MerkleInvertedIndex) -> BTreeMap<u32, Digest> {
        idx.lists().iter().map(|l| (l.cluster, l.digest)).collect()
    }

    fn query(seed: u64, n_clusters: usize) -> SparseBovw {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(u32, u32)> = (0..6)
            .map(|_| {
                let u: f64 = rng.gen();
                let c = ((u * u) * n_clusters as f64) as u32;
                (c.min(n_clusters as u32 - 1), rng.gen_range(1..3))
            })
            .collect();
        SparseBovw::from_counts(pairs)
    }

    #[test]
    fn honest_search_verifies_in_both_modes() {
        let idx = corpus(300, 30, 21);
        let digests = digests_of(&idx);
        for qseed in 0..4 {
            let q = query(40 + qseed, 30);
            for mode in [BoundsMode::CuckooFiltered, BoundsMode::MaxBound] {
                let out = inv_search(&idx, &q, 10, mode);
                let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
                let verified = verify_topk(&out.vo, &q, &digests, &claimed, 10, mode)
                    .expect("honest VO verifies");
                // Verified scores equal the SP's exact scores (all winner
                // postings are popped).
                for ((vi, vs), (si, ss)) in verified.topk.iter().zip(&out.topk) {
                    assert_eq!(vi, si);
                    assert_eq!(vs, ss, "mode {mode:?}");
                }
            }
        }
    }

    #[test]
    fn demoting_a_winner_is_rejected() {
        let idx = corpus(300, 30, 22);
        let digests = digests_of(&idx);
        let q = query(50, 30);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let mut claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        // Replace the best image with some popped non-winner.
        let popped_non_winner = out
            .vo
            .lists
            .iter()
            .flat_map(|l| l.popped.iter().map(|&(i, _)| i))
            .find(|i| !claimed.contains(i));
        let Some(substitute) = popped_non_winner else {
            panic!("fixture must pop at least one non-winner");
        };
        claimed[0] = substitute;
        let err = verify_topk(
            &out.vo,
            &q,
            &digests,
            &claimed,
            5,
            BoundsMode::CuckooFiltered,
        )
        .expect_err("forged winner set must fail");
        assert!(
            matches!(
                err,
                InvVerifyError::Condition2Failed { .. } | InvVerifyError::Condition1Failed
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn fabricated_winner_is_rejected() {
        let idx = corpus(200, 25, 23);
        let digests = digests_of(&idx);
        let q = query(51, 25);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let mut claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        claimed[0] = 999_999; // an image that exists nowhere
        let err = verify_topk(
            &out.vo,
            &q,
            &digests,
            &claimed,
            5,
            BoundsMode::CuckooFiltered,
        )
        .expect_err("fabricated winner must fail");
        assert!(
            matches!(
                err,
                InvVerifyError::WinnerUnsupported { .. }
                    | InvVerifyError::Condition1Failed
                    | InvVerifyError::Condition2Failed { .. }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn tampered_popped_impact_breaks_digest() {
        let idx = corpus(200, 25, 24);
        let digests = digests_of(&idx);
        let q = query(52, 25);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let mut forged = out.vo.clone();
        let list = forged
            .lists
            .iter_mut()
            .find(|l| !l.popped.is_empty())
            .expect("something popped");
        list.popped[0].1 *= 2.0;
        assert!(matches!(
            verify_topk(
                &forged,
                &q,
                &digests,
                &claimed,
                5,
                BoundsMode::CuckooFiltered
            ),
            Err(InvVerifyError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn truncated_popped_prefix_breaks_digest() {
        let idx = corpus(200, 25, 25);
        let digests = digests_of(&idx);
        let q = query(53, 25);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let mut forged = out.vo.clone();
        let list = forged
            .lists
            .iter_mut()
            .find(|l| l.popped.len() >= 2)
            .expect("a list with two popped postings");
        list.popped.remove(0);
        // A skipped list fails the block-shape check first; an exhausted
        // one fails the digest fold.
        assert!(matches!(
            verify_topk(
                &forged,
                &q,
                &digests,
                &claimed,
                5,
                BoundsMode::CuckooFiltered
            ),
            Err(InvVerifyError::DigestMismatch { .. })
                | Err(InvVerifyError::BlockShapeInvalid { .. })
        ));
    }

    #[test]
    fn forged_weight_breaks_digest() {
        let idx = corpus(200, 25, 26);
        let digests = digests_of(&idx);
        let q = query(54, 25);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let mut forged = out.vo.clone();
        forged.lists[0].weight += 1.0;
        assert!(matches!(
            verify_topk(
                &forged,
                &q,
                &digests,
                &claimed,
                5,
                BoundsMode::CuckooFiltered
            ),
            Err(InvVerifyError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn forged_filter_breaks_digest() {
        let idx = corpus(200, 25, 27);
        let digests = digests_of(&idx);
        let q = query(55, 25);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let mut forged = out.vo.clone();
        let swapped = forged
            .lists
            .iter_mut()
            .find_map(|l| match &mut l.remaining {
                RemainingVo::Skipped {
                    filter: FilterVo::Bytes(bytes),
                    ..
                } => {
                    // Replace with a fresh (different) filter's canonical
                    // bytes.
                    let fresh = CuckooFilter::with_buckets(
                        CuckooFilter::from_bytes(bytes)
                            .expect("canonical")
                            .n_buckets(),
                    );
                    *bytes = fresh.to_bytes();
                    Some(())
                }
                _ => None,
            });
        assert!(swapped.is_some(), "fixture needs a partial list");
        assert!(matches!(
            verify_topk(
                &forged,
                &q,
                &digests,
                &claimed,
                5,
                BoundsMode::CuckooFiltered
            ),
            Err(InvVerifyError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn missing_or_extra_lists_are_rejected() {
        let idx = corpus(200, 25, 28);
        let digests = digests_of(&idx);
        let q = query(56, 25);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let mut missing = out.vo.clone();
        missing.lists.pop();
        assert!(matches!(
            verify_topk(
                &missing,
                &q,
                &digests,
                &claimed,
                5,
                BoundsMode::CuckooFiltered
            ),
            Err(InvVerifyError::ClusterMismatch)
        ));
    }

    #[test]
    fn short_result_requires_exhaustion() {
        let idx = corpus(300, 30, 29);
        let digests = digests_of(&idx);
        let q = query(57, 30);
        let out = inv_search(&idx, &q, 10, BoundsMode::CuckooFiltered);
        // Claim fewer winners than k without exhausting the lists.
        let claimed: Vec<u64> = out.topk.iter().take(3).map(|&(i, _)| i).collect();
        let any_partial = out
            .vo
            .lists
            .iter()
            .any(|l| matches!(l.remaining, RemainingVo::Skipped { .. }));
        if any_partial {
            assert!(matches!(
                verify_topk(
                    &out.vo,
                    &q,
                    &digests,
                    &claimed,
                    10,
                    BoundsMode::CuckooFiltered
                ),
                Err(InvVerifyError::ShortResult)
            ));
        }
    }

    #[test]
    fn duplicate_winners_are_rejected() {
        let idx = corpus(200, 25, 30);
        let digests = digests_of(&idx);
        let q = query(58, 25);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let mut claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        if claimed.len() >= 2 {
            claimed[1] = claimed[0];
            assert!(matches!(
                verify_topk(
                    &out.vo,
                    &q,
                    &digests,
                    &claimed,
                    5,
                    BoundsMode::CuckooFiltered
                ),
                Err(InvVerifyError::DuplicateWinner { .. })
            ));
        }
    }

    #[test]
    fn skip_proof_on_unaligned_prefix_is_rejected() {
        let idx = corpus(300, 30, 31);
        let digests = digests_of(&idx);
        let q = query(59, 30);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let mut forged = out.vo.clone();
        // Splice one popped posting off a skipped list: the prefix no
        // longer ends on a block boundary.
        let spliced = forged
            .lists
            .iter_mut()
            .find(|l| matches!(l.remaining, RemainingVo::Skipped { .. }) && !l.popped.is_empty());
        let Some(list) = spliced else {
            panic!("fixture needs a skipped list with popped postings");
        };
        let cluster = list.cluster;
        list.popped.pop();
        assert_eq!(
            verify_topk(
                &forged,
                &q,
                &digests,
                &claimed,
                5,
                BoundsMode::CuckooFiltered
            )
            .expect_err("unaligned prefix must fail"),
            InvVerifyError::BlockShapeInvalid { cluster }
        );
    }

    #[test]
    fn inflated_fence_bound_breaks_digest() {
        let idx = corpus(300, 30, 32);
        let digests = digests_of(&idx);
        let q = query(60, 30);
        let out = inv_search(&idx, &q, 5, BoundsMode::CuckooFiltered);
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let mut forged = out.vo.clone();
        let tampered = forged
            .lists
            .iter_mut()
            .find_map(|l| match &mut l.remaining {
                RemainingVo::Skipped { max_impact, .. } => {
                    // Deflate the bound so condition 1 would pass vacuously —
                    // the commitment must catch it first.
                    *max_impact *= 0.5;
                    Some(())
                }
                _ => None,
            });
        assert!(tampered.is_some(), "fixture needs a skipped list");
        assert!(matches!(
            verify_topk(
                &forged,
                &q,
                &digests,
                &claimed,
                5,
                BoundsMode::CuckooFiltered
            ),
            Err(InvVerifyError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn equality_of_eq_impl_for_verified_errors() {
        assert_eq!(
            InvVerifyError::Condition1Failed,
            InvVerifyError::Condition1Failed
        );
        assert_ne!(
            InvVerifyError::Condition2Failed { image: 1 },
            InvVerifyError::Condition2Failed { image: 2 }
        );
    }
}
