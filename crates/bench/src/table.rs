//! Minimal fixed-width table printer for the figure harness.

/// A column-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "ragged table row");
        self.rows.push(row);
    }

    /// Renders with every column right-aligned except the first.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Milliseconds with one decimal.
pub fn ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e3)
}

/// Kibibytes with one decimal.
pub fn kib(bytes: f64) -> String {
    format!("{:.1}", bytes / 1024.0)
}

/// Percentage with one decimal.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["scheme", "ms"]);
        t.row(["Baseline", "12.0"]);
        t.row(["ImageProof", "3.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[3].starts_with("ImageProof"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn unit_formatters() {
        assert_eq!(ms(0.0123), "12.3");
        assert_eq!(kib(2048.0), "2.0");
        assert_eq!(pct(0.5), "50.0");
    }
}
