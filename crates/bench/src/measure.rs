//! Per-step and end-to-end measurements, averaged over a query workload.

use crate::fixture::Fixture;
use imageproof_akm::SparseBovw;
use imageproof_core::{IndexVariant, Scheme};
use imageproof_crypto::wire::Encode;
use imageproof_crypto::Digest;
use imageproof_invindex::grouped::{grouped_search, verify_grouped_topk};
use imageproof_invindex::{inv_search, verify_topk, BoundsMode};
use imageproof_mrkd::{mrkd_search, mrkd_search_baseline, verify_bovw, verify_bovw_baseline};
use imageproof_obs::Stopwatch;
use std::collections::BTreeMap;

/// BoVW-step metrics (Figs. 6–8).
#[derive(Clone, Copy, Debug, Default)]
pub struct BovwMeasurement {
    pub sp_seconds: f64,
    pub client_seconds: f64,
    pub vo_bytes: f64,
    pub shared_ratio: f64,
}

/// Inverted-index-step metrics (Figs. 9–11).
#[derive(Clone, Copy, Debug, Default)]
pub struct InvMeasurement {
    pub sp_seconds: f64,
    pub client_seconds: f64,
    pub popped_ratio: f64,
    pub vo_bytes: f64,
}

/// End-to-end metrics (Figs. 12–14).
#[derive(Clone, Copy, Debug, Default)]
pub struct OverallMeasurement {
    pub sp_seconds: f64,
    pub client_seconds: f64,
    pub vo_bytes: f64,
}

/// Measures only the BoVW encoding step of `scheme` over `queries`.
///
/// SP time covers threshold computation (AKM search) plus `MRKDSearch` VO
/// generation; client time covers full BoVW verification.
pub fn measure_bovw_step(
    fixture: &Fixture,
    scheme: Scheme,
    queries: &[Vec<Vec<f32>>],
) -> BovwMeasurement {
    let system = fixture.system(scheme);
    let (sp, _) = &*system;
    let db = sp.database();
    let mut out = BovwMeasurement::default();
    for features in queries {
        let t0 = Stopwatch::start();
        let thresholds: Vec<f32> = features
            .iter()
            .map(|f| db.codebook.assign_with_threshold(f).1)
            .collect();
        if scheme.shares_nodes() {
            let search = mrkd_search(&db.mrkd, features, &thresholds);
            out.sp_seconds += t0.elapsed_seconds();
            out.vo_bytes += search.vo.wire_size() as f64;
            out.shared_ratio += search.stats.shared_ratio();

            let t1 = Stopwatch::start();
            verify_bovw(&search.vo, features, scheme.candidate_mode())
                .expect("honest BoVW VO verifies");
            out.client_seconds += t1.elapsed_seconds();
        } else {
            let (vo, _, stats) = mrkd_search_baseline(&db.mrkd, features, &thresholds);
            out.sp_seconds += t0.elapsed_seconds();
            out.vo_bytes += vo.wire_size() as f64;
            out.shared_ratio += stats.shared_ratio();

            let t1 = Stopwatch::start();
            verify_bovw_baseline(&vo, features).expect("honest baseline BoVW VO verifies");
            out.client_seconds += t1.elapsed_seconds();
        }
    }
    let n = queries.len().max(1) as f64;
    BovwMeasurement {
        sp_seconds: out.sp_seconds / n,
        client_seconds: out.client_seconds / n,
        vo_bytes: out.vo_bytes / n,
        shared_ratio: out.shared_ratio / n,
    }
}

/// Measures only the inverted-index step of `scheme` over `queries`.
pub fn measure_inv_step(
    fixture: &Fixture,
    scheme: Scheme,
    queries: &[Vec<Vec<f32>>],
    k: usize,
) -> InvMeasurement {
    let system = fixture.system(scheme);
    let (sp, _) = &*system;
    let db = sp.database();
    let mut out = InvMeasurement::default();
    for features in queries {
        // The BoVW vector is an input to this step; encode it outside the
        // timed region.
        let bovw = SparseBovw::from_counts(features.iter().map(|f| (db.codebook.assign(f), 1)));
        match &db.inv {
            IndexVariant::Plain(index) => {
                let digests: BTreeMap<u32, Digest> = index
                    .lists()
                    .iter()
                    .map(|l| (l.cluster, l.digest))
                    .collect();
                let mode = if scheme.uses_filters() {
                    BoundsMode::CuckooFiltered
                } else {
                    BoundsMode::MaxBound
                };
                let t0 = Stopwatch::start();
                let search = inv_search(index, &bovw, k, mode);
                out.sp_seconds += t0.elapsed_seconds();
                out.popped_ratio += search.stats.popped_ratio();
                out.vo_bytes += search.vo.wire_size() as f64;
                let claimed: Vec<u64> = search.topk.iter().map(|&(i, _)| i).collect();
                let t1 = Stopwatch::start();
                verify_topk(&search.vo, &bovw, &digests, &claimed, k, mode)
                    .expect("honest inverted VO verifies");
                out.client_seconds += t1.elapsed_seconds();
            }
            IndexVariant::Grouped(index) => {
                let digests: BTreeMap<u32, Digest> = index
                    .lists()
                    .iter()
                    .map(|l| (l.cluster, l.digest))
                    .collect();
                let t0 = Stopwatch::start();
                let search = grouped_search(index, &bovw, k);
                out.sp_seconds += t0.elapsed_seconds();
                out.popped_ratio += search.stats.popped_ratio();
                out.vo_bytes += search.vo.wire_size() as f64;
                let claimed: Vec<u64> = search.topk.iter().map(|&(i, _)| i).collect();
                let t1 = Stopwatch::start();
                verify_grouped_topk(&search.vo, &bovw, &digests, &claimed, k)
                    .expect("honest grouped VO verifies");
                out.client_seconds += t1.elapsed_seconds();
            }
        }
    }
    let n = queries.len().max(1) as f64;
    InvMeasurement {
        sp_seconds: out.sp_seconds / n,
        client_seconds: out.client_seconds / n,
        popped_ratio: out.popped_ratio / n,
        vo_bytes: out.vo_bytes / n,
    }
}

/// Measures the complete authenticated query path of `scheme`.
pub fn measure_overall(
    fixture: &Fixture,
    scheme: Scheme,
    queries: &[Vec<Vec<f32>>],
    k: usize,
) -> OverallMeasurement {
    let system = fixture.system(scheme);
    let (sp, client) = &*system;
    let mut out = OverallMeasurement::default();
    for features in queries {
        let t0 = Stopwatch::start();
        let (response, _) = sp.query(features, k);
        out.sp_seconds += t0.elapsed_seconds();
        out.vo_bytes += response.vo.wire_size() as f64;
        let t1 = Stopwatch::start();
        client
            .verify(features, k, &response)
            .expect("honest response verifies");
        out.client_seconds += t1.elapsed_seconds();
    }
    let n = queries.len().max(1) as f64;
    OverallMeasurement {
        sp_seconds: out.sp_seconds / n,
        client_seconds: out.client_seconds / n,
        vo_bytes: out.vo_bytes / n,
    }
}
