//! Experiment fixtures: corpus + codebook + per-scheme systems, built once
//! and shared across measurements.

use imageproof_akm::{AkmParams, Codebook, SparseBovw};
use imageproof_core::{
    Client, Concurrency, Owner, Scheme, ServiceProvider, ShardManifest, ShardedSp, SystemConfig,
};
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind, ImageId};
use std::collections::HashMap;

/// Experiment-scale knobs. The defaults mirror the paper's default setting
/// (§VII-A: 0.5M images, 1M codebook, 500 feature vectors, k = 10) scaled
/// to laptop size with the same ratios between axes.
#[derive(Clone, Debug)]
pub struct FixtureConfig {
    pub kind: DescriptorKind,
    pub n_images: usize,
    pub features_per_image: usize,
    pub n_latent_words: usize,
    pub words_per_image: usize,
    pub codebook_size: usize,
    pub seed: u64,
}

impl FixtureConfig {
    /// The default experiment scale (the "0.5M images / 1M codebook"
    /// analogue).
    pub fn default_scale(kind: DescriptorKind) -> FixtureConfig {
        FixtureConfig {
            kind,
            n_images: 2000,
            features_per_image: 120,
            n_latent_words: 1500,
            words_per_image: 16,
            codebook_size: 4000,
            seed: 0x1_ca90,
        }
    }

    /// A much smaller scale for smoke tests and criterion micro-benches.
    pub fn quick(kind: DescriptorKind) -> FixtureConfig {
        FixtureConfig {
            kind,
            n_images: 300,
            features_per_image: 50,
            n_latent_words: 250,
            words_per_image: 10,
            codebook_size: 512,
            seed: 0x1_ca90,
        }
    }

    fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            kind: self.kind,
            n_images: self.n_images,
            features_per_image: self.features_per_image,
            n_latent_words: self.n_latent_words,
            words_per_image: self.words_per_image,
            zipf_exponent: 0.8,
            noise_sigma: 0.005,
            image_bytes: 256,
            seed: self.seed,
        }
    }

    fn akm_params(&self) -> AkmParams {
        AkmParams {
            n_clusters: self.codebook_size,
            n_trees: 8,       // paper §VII-A
            max_leaf_size: 2, // paper §VII-A
            max_checks: 32,   // paper §VII-A
            iterations: 2,
            seed: self.seed ^ 0xc0de,
        }
    }
}

/// A built experiment fixture. Systems are created lazily per scheme (three
/// distinct databases back the four schemes: Baseline and ImageProof share
/// one).
pub struct Fixture {
    pub config: FixtureConfig,
    pub corpus: Corpus,
    pub codebook: Codebook,
    encodings: Vec<(ImageId, SparseBovw)>,
    owner: Owner,
    systems: parking_lot::Mutex<HashMap<Scheme, std::sync::Arc<(ServiceProvider, Client)>>>,
}

impl Fixture {
    /// Builds the corpus, trains the codebook, and encodes every image
    /// (the expensive owner-side passes, shared by all schemes).
    pub fn build(config: FixtureConfig) -> Fixture {
        Self::build_with_akm_override(config, |_| {})
    }

    /// [`Fixture::build`] with a hook that mutates the AKM parameters —
    /// the ablation benchmarks sweep forest size and search budget.
    pub fn build_with_akm_override(
        config: FixtureConfig,
        adjust: impl FnOnce(&mut AkmParams),
    ) -> Fixture {
        let mut corpus = Corpus::generate(&config.corpus_config());
        // Tie trio: three consecutive-id images share one feature set and
        // latent words, so they score identically for any query and land
        // in different shards for every shard count ≥ 2. A query sourced
        // from the trio with k = 2 cuts through the tie, forcing the
        // sharded merge (and its fence proofs) to resolve a genuine
        // cross-shard tie — see [`Fixture::tie_query`].
        if config.n_images >= 8 {
            let [a, b, c] = Self::tie_trio_for(config.n_images);
            let features = corpus.images[a as usize].features.clone();
            let words = corpus.images[a as usize].latent_words.clone();
            for dup in [b, c] {
                corpus.images[dup as usize].features = features.clone();
                corpus.images[dup as usize].latent_words = words.clone();
            }
        }
        let mut akm = config.akm_params();
        adjust(&mut akm);
        let codebook = Codebook::train(config.kind, corpus.all_features(), &akm);
        let encodings: Vec<(ImageId, SparseBovw)> = corpus
            .images
            .iter()
            .map(|img| {
                (
                    img.id,
                    SparseBovw::encode(&codebook, img.features.iter().map(Vec::as_slice)),
                )
            })
            .collect();
        Fixture {
            config,
            corpus,
            codebook,
            encodings,
            owner: Owner::new(&[0xA5; 32]),
            systems: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// The (SP, client) pair for one scheme, building it on first use.
    pub fn system(&self, scheme: Scheme) -> std::sync::Arc<(ServiceProvider, Client)> {
        let mut systems = self.systems.lock();
        systems
            .entry(scheme)
            .or_insert_with(|| {
                let (db, published) = self.owner.build_system_prepared(
                    &self.corpus,
                    self.codebook.clone(),
                    self.encodings.clone(),
                    scheme,
                );
                std::sync::Arc::new((ServiceProvider::new(db), Client::new(published)))
            })
            .clone()
    }

    /// Uncached, timed ADS construction at an explicit thread count (the
    /// owner-side axis of the thread-sweep figure). Returns the built SP,
    /// a client holding the published parameters, and the wall-clock build
    /// seconds; the fixture's system cache is bypassed so every call
    /// measures a full build.
    pub fn build_system_timed(
        &self,
        scheme: Scheme,
        conc: Concurrency,
    ) -> (ServiceProvider, Client, f64) {
        let t = imageproof_obs::Stopwatch::start();
        let (db, published) = self.owner.build_system_prepared_config(
            &self.corpus,
            self.codebook.clone(),
            self.encodings.clone(),
            SystemConfig::new(scheme).with_threads(conc.threads),
        );
        let seconds = t.elapsed_seconds();
        (ServiceProvider::new(db), Client::new(published), seconds)
    }

    /// Uncached, timed sharded ADS construction (the shard-count axis of
    /// the shard sweep figure). Partitions the corpus by `shard_of`, builds
    /// every per-shard ADS under one shared codebook and impact model, and
    /// signs the shard manifest. Returns the sharded SP, a client holding
    /// the published parameters, the manifest, and the wall-clock build
    /// seconds.
    pub fn build_sharded_system_timed(
        &self,
        scheme: Scheme,
        shard_count: usize,
    ) -> (ShardedSp, Client, ShardManifest, f64) {
        let t = imageproof_obs::Stopwatch::start();
        let system = self.owner.build_sharded_system_prepared_config(
            &self.corpus,
            self.codebook.clone(),
            self.encodings.clone(),
            SystemConfig::new(scheme),
            shard_count,
        );
        let seconds = t.elapsed_seconds();
        (
            ShardedSp::new(system.shards),
            Client::new(system.published),
            system.manifest,
            seconds,
        )
    }

    /// The fixture's tie-trio image ids: three consecutive ids (centered
    /// in the id range) sharing one encoding, so they tie exactly and
    /// split across shards for every shard count ≥ 2.
    pub fn tie_trio(&self) -> [ImageId; 3] {
        Self::tie_trio_for(self.config.n_images)
    }

    fn tie_trio_for(n_images: usize) -> [ImageId; 3] {
        let base = (n_images / 2) as ImageId;
        [base, base + 1, base + 2]
    }

    /// A query sourced from the tie trio. At k = 2 its top-k cuts through
    /// the trio's three-way tie, so a sharded deployment must merge (and
    /// fence) across a contested tie boundary.
    pub fn tie_query(&self, n_features: usize) -> Vec<Vec<f32>> {
        self.corpus
            .query_from_image(self.tie_trio()[0], n_features, 0x71e)
    }

    /// Deterministic query workloads: `n_queries` feature sets of
    /// `n_features` each, derived from evenly spaced source images (the
    /// paper averages over 10 random query images).
    pub fn queries(&self, n_queries: usize, n_features: usize) -> Vec<Vec<Vec<f32>>> {
        let stride = (self.corpus.images.len() / n_queries.max(1)).max(1);
        (0..n_queries)
            .map(|i| {
                let source = ((i * stride + 7) % self.corpus.images.len()) as ImageId;
                self.corpus
                    .query_from_image(source, n_features, 0xbeef + i as u64)
            })
            .collect()
    }
}
