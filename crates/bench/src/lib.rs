//! Experiment infrastructure shared by the `figures` binary (which
//! regenerates every figure of the paper's evaluation, §VII) and the
//! criterion micro-benchmarks.
//!
//! The paper's testbed is a 256 GB Xeon server over MirFlickr1M; this
//! reproduction scales every axis down by the same factors (see
//! `DESIGN.md` §3.4) while keeping the *relative* sweeps identical, so the
//! figures' shapes — which scheme wins, by what factor, and each metric's
//! trend along the swept axis — are comparable.

pub mod fixture;
pub mod measure;
pub mod table;

pub use fixture::{Fixture, FixtureConfig};
pub use measure::{
    measure_bovw_step, measure_inv_step, measure_overall, BovwMeasurement, InvMeasurement,
    OverallMeasurement,
};
pub use table::Table;
