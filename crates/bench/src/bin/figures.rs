//! Regenerates every figure of the paper's evaluation (§VII, Figs. 6–14),
//! plus a thread-count sweep (Fig. 15) for the parallel execution layer and
//! a shard-count sweep (Fig. 16) for sharded SP serving.
//!
//! ```sh
//! cargo run -p imageproof-bench --release --bin figures            # all figures
//! cargo run -p imageproof-bench --release --bin figures -- --fig 9 # one figure
//! cargo run -p imageproof-bench --release --bin figures -- --quick # smoke scale
//! ```
//!
//! Axes are scaled from the paper's server-scale setting to laptop scale
//! with identical ratios (DESIGN.md §3.4); the series *shapes* are the
//! reproduction target, not absolute values.

use imageproof_bench::fixture::{Fixture, FixtureConfig};
use imageproof_bench::measure::{measure_bovw_step, measure_inv_step, measure_overall};
use imageproof_bench::table::{kib, ms, pct, Table};
use imageproof_core::{Scheme, SpaceUsage};
use imageproof_crypto::wire::Encode;
use imageproof_vision::DescriptorKind;
use std::collections::HashMap;
use std::sync::Arc;

/// Sweep axes for one run scale.
struct Scale {
    features_sweep: Vec<usize>,
    codebook_sweep: Vec<usize>,
    dataset_sweep: Vec<usize>,
    k_sweep: Vec<usize>,
    default_features: usize,
    default_k: usize,
    n_queries: usize,
    base_sift: FixtureConfig,
    base_surf: FixtureConfig,
}

impl Scale {
    fn full() -> Scale {
        Scale {
            features_sweep: vec![100, 200, 300, 400, 500],
            codebook_sweep: vec![1000, 2000, 4000],
            dataset_sweep: vec![1000, 2000, 4000],
            k_sweep: vec![1, 5, 10, 20, 50],
            default_features: 200,
            default_k: 10,
            // The paper averages 10 query images; 5 keeps the full-scale
            // harness within an hour on two cores with the same trends.
            n_queries: 5,
            base_sift: FixtureConfig::default_scale(DescriptorKind::Sift),
            base_surf: FixtureConfig::default_scale(DescriptorKind::Surf),
        }
    }

    fn quick() -> Scale {
        Scale {
            features_sweep: vec![50, 100],
            codebook_sweep: vec![256, 512],
            dataset_sweep: vec![150, 300],
            k_sweep: vec![1, 10],
            default_features: 60,
            default_k: 5,
            n_queries: 3,
            base_sift: FixtureConfig::quick(DescriptorKind::Sift),
            base_surf: FixtureConfig::quick(DescriptorKind::Surf),
        }
    }
}

/// Caches fixtures across figures (several figures share the default
/// configuration).
struct FixtureCache {
    built: HashMap<String, Arc<Fixture>>,
}

impl FixtureCache {
    fn new() -> FixtureCache {
        FixtureCache {
            built: HashMap::new(),
        }
    }

    fn get(&mut self, config: &FixtureConfig) -> Arc<Fixture> {
        let key = format!(
            "{:?}/{}/{}",
            config.kind, config.n_images, config.codebook_size
        );
        if let Some(f) = self.built.get(&key) {
            return f.clone();
        }
        eprintln!(
            "[build] {:?} corpus: {} images, codebook {} …",
            config.kind, config.n_images, config.codebook_size
        );
        let t = imageproof_obs::Stopwatch::start();
        let fixture = Arc::new(Fixture::build(config.clone()));
        eprintln!("[build] done in {:.1}s", t.elapsed_seconds());
        self.built.insert(key, fixture.clone());
        fixture
    }
}

const BOVW_SCHEMES: [Scheme; 3] = [Scheme::Baseline, Scheme::ImageProof, Scheme::OptimizedBovw];
const INV_SCHEMES: [Scheme; 3] = [Scheme::Baseline, Scheme::ImageProof, Scheme::OptimizedBoth];

fn fig6_7(cache: &mut FixtureCache, scale: &Scale, kind: DescriptorKind, fig: u32) {
    let base = match kind {
        DescriptorKind::Sift => &scale.base_sift,
        DescriptorKind::Surf => &scale.base_surf,
    };
    let fixture = cache.get(base);
    println!(
        "\n== Fig. {fig}: BoVW performance vs # {kind:?} feature vectors ==\n\
         (paper: Baseline worst everywhere, gap grows with n_Q; ImageProof best CPU;\n\
          Optimized best VO size; shared-node ratio ~0.4-0.5)\n"
    );
    let mut t = Table::new([
        "scheme",
        "n_feat",
        "sp_ms",
        "client_ms",
        "vo_KiB",
        "shared_ratio",
    ]);
    for &n_features in &scale.features_sweep {
        let queries = fixture.queries(scale.n_queries, n_features);
        for scheme in BOVW_SCHEMES {
            let m = measure_bovw_step(&fixture, scheme, &queries);
            t.row([
                scheme.label().to_string(),
                n_features.to_string(),
                ms(m.sp_seconds),
                ms(m.client_seconds),
                kib(m.vo_bytes),
                format!("{:.2}", m.shared_ratio),
            ]);
        }
    }
    println!("{}", t.render());
}

fn fig8(cache: &mut FixtureCache, scale: &Scale) {
    println!(
        "\n== Fig. 8: BoVW performance vs codebook size (SURF) ==\n\
         (paper: costs almost flat in codebook size; VO grows slightly)\n"
    );
    let mut t = Table::new([
        "scheme",
        "codebook",
        "sp_ms",
        "client_ms",
        "vo_KiB",
        "shared_ratio",
    ]);
    for &codebook_size in &scale.codebook_sweep {
        let config = FixtureConfig {
            codebook_size,
            ..scale.base_surf.clone()
        };
        let fixture = cache.get(&config);
        let queries = fixture.queries(scale.n_queries, scale.default_features);
        for scheme in BOVW_SCHEMES {
            let m = measure_bovw_step(&fixture, scheme, &queries);
            t.row([
                scheme.label().to_string(),
                codebook_size.to_string(),
                ms(m.sp_seconds),
                ms(m.client_seconds),
                kib(m.vo_bytes),
                format!("{:.2}", m.shared_ratio),
            ]);
        }
    }
    println!("{}", t.render());
}

fn fig9(cache: &mut FixtureCache, scale: &Scale) {
    let fixture = cache.get(&scale.base_surf);
    println!(
        "\n== Fig. 9: inverted-index performance vs # feature vectors ==\n\
         (paper: Baseline pops ~all postings and is slowest; InvSearch and\n\
          Optimized stop far earlier)\n"
    );
    let mut t = Table::new(["scheme", "n_feat", "sp_ms", "client_ms", "popped_%"]);
    for &n_features in &scale.features_sweep {
        let queries = fixture.queries(scale.n_queries, n_features);
        for scheme in INV_SCHEMES {
            let m = measure_inv_step(&fixture, scheme, &queries, scale.default_k);
            t.row([
                scheme.label().to_string(),
                n_features.to_string(),
                ms(m.sp_seconds),
                ms(m.client_seconds),
                pct(m.popped_ratio),
            ]);
        }
    }
    println!("{}", t.render());
}

fn fig10(cache: &mut FixtureCache, scale: &Scale) {
    println!(
        "\n== Fig. 10: inverted-index performance vs codebook size ==\n\
         (paper: all CPU costs fall with codebook size; popped %% falls for\n\
          InvSearch/Optimized, stays ~100%% for Baseline)\n"
    );
    let mut t = Table::new(["scheme", "codebook", "sp_ms", "client_ms", "popped_%"]);
    for &codebook_size in &scale.codebook_sweep {
        let config = FixtureConfig {
            codebook_size,
            ..scale.base_surf.clone()
        };
        let fixture = cache.get(&config);
        let queries = fixture.queries(scale.n_queries, scale.default_features);
        for scheme in INV_SCHEMES {
            let m = measure_inv_step(&fixture, scheme, &queries, scale.default_k);
            t.row([
                scheme.label().to_string(),
                codebook_size.to_string(),
                ms(m.sp_seconds),
                ms(m.client_seconds),
                pct(m.popped_ratio),
            ]);
        }
    }
    println!("{}", t.render());
}

fn fig11(cache: &mut FixtureCache, scale: &Scale) {
    let fixture = cache.get(&scale.base_surf);
    println!(
        "\n== Fig. 11: inverted-index performance vs k ==\n\
         (paper: popped %% grows with k for InvSearch/Optimized; Optimized\n\
          reduces client CPU, similar SP CPU)\n"
    );
    let mut t = Table::new(["scheme", "k", "sp_ms", "client_ms", "popped_%"]);
    let queries = fixture.queries(scale.n_queries, scale.default_features);
    for &k in &scale.k_sweep {
        for scheme in INV_SCHEMES {
            let m = measure_inv_step(&fixture, scheme, &queries, k);
            t.row([
                scheme.label().to_string(),
                k.to_string(),
                ms(m.sp_seconds),
                ms(m.client_seconds),
                pct(m.popped_ratio),
            ]);
        }
    }
    println!("{}", t.render());
}

fn overall_row(
    t: &mut Table,
    fixture: &Fixture,
    scheme: Scheme,
    axis_label: String,
    queries: &[Vec<Vec<f32>>],
    k: usize,
) {
    let m = measure_overall(fixture, scheme, queries, k);
    t.row([
        scheme.label().to_string(),
        axis_label,
        kib(m.vo_bytes),
        ms(m.sp_seconds),
        ms(m.client_seconds),
    ]);
}

fn fig12(cache: &mut FixtureCache, scale: &Scale) {
    let fixture = cache.get(&scale.base_surf);
    println!(
        "\n== Fig. 12: overall performance vs # feature vectors ==\n\
         (paper: all costs grow with n_Q; Optimized(BoVW) trades client CPU for\n\
          VO size; Optimized(Both) best client CPU + VO)\n"
    );
    let mut t = Table::new(["scheme", "n_feat", "vo_KiB", "sp_ms", "client_ms"]);
    for &n_features in &scale.features_sweep {
        let queries = fixture.queries(scale.n_queries, n_features);
        for scheme in Scheme::ALL {
            overall_row(
                &mut t,
                &fixture,
                scheme,
                n_features.to_string(),
                &queries,
                scale.default_k,
            );
        }
    }
    println!("{}", t.render());
}

fn fig13(cache: &mut FixtureCache, scale: &Scale) {
    println!(
        "\n== Fig. 13: overall performance vs codebook size ==\n\
         (paper: all costs fall as the codebook grows — shorter posting lists)\n"
    );
    let mut t = Table::new(["scheme", "codebook", "vo_KiB", "sp_ms", "client_ms"]);
    for &codebook_size in &scale.codebook_sweep {
        let config = FixtureConfig {
            codebook_size,
            ..scale.base_surf.clone()
        };
        let fixture = cache.get(&config);
        let queries = fixture.queries(scale.n_queries, scale.default_features);
        for scheme in Scheme::ALL {
            overall_row(
                &mut t,
                &fixture,
                scheme,
                codebook_size.to_string(),
                &queries,
                scale.default_k,
            );
        }
    }
    println!("{}", t.render());
}

fn fig14(cache: &mut FixtureCache, scale: &Scale) {
    println!(
        "\n== Fig. 14: overall performance vs dataset size ==\n\
         (paper: Baseline degrades fastest; ImageProof's SP CPU and VO are far\n\
          lower; Optimized(Both) best client CPU + VO, advantage grows with data)\n"
    );
    let mut t = Table::new(["scheme", "images", "vo_KiB", "sp_ms", "client_ms"]);
    for &n_images in &scale.dataset_sweep {
        let config = FixtureConfig {
            n_images,
            ..scale.base_surf.clone()
        };
        let fixture = cache.get(&config);
        let queries = fixture.queries(scale.n_queries, scale.default_features);
        for scheme in Scheme::ALL {
            overall_row(
                &mut t,
                &fixture,
                scheme,
                n_images.to_string(),
                &queries,
                scale.default_k,
            );
        }
    }
    println!("{}", t.render());
}

/// Accumulates per-query phase timings (from [`QueryProfile`]s) into
/// log-linear histograms, one per top-level phase, and renders them as a
/// JSON object of quantile summaries for the `BENCH_*.json` snapshots.
///
/// [`QueryProfile`]: imageproof_obs::QueryProfile
#[derive(Default)]
struct PhaseQuantiles {
    hists: std::collections::BTreeMap<&'static str, imageproof_obs::Histogram>,
}

impl PhaseQuantiles {
    fn record(&mut self, profile: &imageproof_obs::QueryProfile) {
        for (phase, seconds) in profile.phases() {
            self.hists
                .entry(phase)
                .or_default()
                .record(imageproof_obs::micros(seconds));
        }
    }

    /// `{"bovw": {"count": …, "mean_us": …, "p50_us": …, "p90_us": …,
    /// "p99_us": …}, …}` — quantiles are log-linear bucket upper bounds
    /// (≤ 25 % high), in microseconds.
    fn json(&self) -> String {
        let phases: Vec<String> = self
            .hists
            .iter()
            .map(|(phase, h)| {
                let s = h.snapshot();
                let q = |p: f64| match s.quantile(p) {
                    Some(v) => v.to_string(),
                    None => "null".to_string(),
                };
                format!(
                    "\"{}\": {{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \
                     \"p90_us\": {}, \"p99_us\": {}}}",
                    phase,
                    s.count,
                    s.mean(),
                    q(0.5),
                    q(0.9),
                    q(0.99),
                )
            })
            .collect();
        format!("{{{}}}", phases.join(", "))
    }
}

/// Per-structure ADS footprint as a JSON object (`BENCH_*.json`).
fn space_json(u: &SpaceUsage) -> String {
    format!(
        "{{\"posting_bytes\": {}, \"filter_bytes\": {}, \"digest_bytes\": {}, \
         \"block_summary_bytes\": {}, \"total_bytes\": {}}}",
        u.posting_bytes,
        u.filter_bytes,
        u.digest_bytes,
        u.block_summary_bytes,
        u.total(),
    )
}

/// One `(scheme, threads)` cell of the thread sweep, as written to
/// `BENCH_queries.json`.
struct SweepRecord {
    scheme: &'static str,
    threads: usize,
    build_seconds: f64,
    sp_ms_per_query: f64,
    vo_bytes: f64,
    client_verify_ms: f64,
    hashes_computed: usize,
    hashes_cached: usize,
    blocks_skipped: usize,
    blocks_scanned: usize,
    space: SpaceUsage,
    phases: PhaseQuantiles,
}

impl SweepRecord {
    fn cache_hit_ratio(&self) -> f64 {
        let total = self.hashes_computed + self.hashes_cached;
        if total == 0 {
            0.0
        } else {
            self.hashes_cached as f64 / total as f64
        }
    }

    fn json(&self) -> String {
        format!(
            "    {{\"scheme\": \"{}\", \"threads\": {}, \"build_s\": {:.6}, \
             \"sp_ms_per_query\": {:.6}, \"vo_bytes\": {}, \
             \"client_verify_ms\": {:.6}, \"hashes_computed\": {}, \
             \"hashes_cached\": {}, \"cache_hit_ratio\": {:.6}, \
             \"blocks_skipped\": {}, \"blocks_scanned\": {}, \
             \"space\": {}, \"phases\": {}}}",
            self.scheme,
            self.threads,
            self.build_seconds,
            self.sp_ms_per_query,
            self.vo_bytes.round() as u64,
            self.client_verify_ms,
            self.hashes_computed,
            self.hashes_cached,
            self.cache_hit_ratio(),
            self.blocks_skipped,
            self.blocks_scanned,
            space_json(&self.space),
            self.phases.json(),
        )
    }
}

/// Thread-count sweep for the deterministic parallel execution layer (not a
/// paper figure): owner-side ADS build seconds, SP-side query CPU, VO
/// bytes, and client verify CPU for every scheme at 1/2/4/8 workers, with
/// speedups relative to the serial run. VOs and signed roots are
/// bit-identical across the sweep (see the `parallel_equivalence` test
/// suite), so only wall-clock moves. The machine-readable results land in
/// `BENCH_queries.json` next to the working directory.
fn fig15(cache: &mut FixtureCache, scale: &Scale, quick: bool) {
    let fixture = cache.get(&scale.base_surf);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\n== Fig. 15: thread-count sweep (build + SP query + client verify) ==\n\
         (expected: near-linear build speedup up to the core count — this\n\
          machine has {cores} — and flat VO bytes; threads=1 is the exact\n\
          serial path)\n"
    );
    let mut t = Table::new([
        "scheme",
        "threads",
        "build_s",
        "build_speedup",
        "sp_ms",
        "sp_speedup",
        "vo_KiB",
        "client_ms",
        "cache_hit_%",
    ]);
    let queries = fixture.queries(scale.n_queries, scale.default_features);
    let k = scale.default_k;
    let mut records: Vec<SweepRecord> = Vec::new();
    for scheme in Scheme::ALL {
        let mut serial_build = 0.0f64;
        let mut serial_query = 0.0f64;
        for threads in [1usize, 2, 4, 8] {
            let conc = imageproof_core::Concurrency::new(threads);
            let (sp, client, build_seconds) = fixture.build_system_timed(scheme, conc);
            let mut vo_bytes = 0.0f64;
            let mut client_seconds = 0.0f64;
            let mut hashes_computed = 0usize;
            let mut hashes_cached = 0usize;
            let mut blocks_skipped = 0usize;
            let mut blocks_scanned = 0usize;
            let space = sp.database().space_usage();
            let mut phases = PhaseQuantiles::default();
            let t0 = imageproof_obs::Stopwatch::start();
            let responses: Vec<_> = queries
                .iter()
                .map(|features| sp.query_profiled(features, k, conc))
                .collect();
            let query_seconds = t0.elapsed_seconds() / queries.len() as f64;
            for (features, (response, stats, profile)) in queries.iter().zip(&responses) {
                phases.record(profile);
                vo_bytes += response.vo.wire_size() as f64;
                hashes_computed += stats.hashes_computed;
                hashes_cached += stats.hashes_cached;
                blocks_skipped += stats.blocks_skipped;
                blocks_scanned += stats.blocks_scanned;
                let t1 = imageproof_obs::Stopwatch::start();
                client
                    .verify(features, k, response)
                    .expect("honest response verifies");
                client_seconds += t1.elapsed_seconds();
            }
            let n = queries.len().max(1) as f64;
            vo_bytes /= n;
            client_seconds /= n;
            if threads == 1 {
                serial_build = build_seconds;
                serial_query = query_seconds;
            }
            let record = SweepRecord {
                scheme: scheme.label(),
                threads,
                build_seconds,
                sp_ms_per_query: query_seconds * 1e3,
                vo_bytes,
                client_verify_ms: client_seconds * 1e3,
                hashes_computed,
                hashes_cached,
                blocks_skipped,
                blocks_scanned,
                space,
                phases,
            };
            t.row([
                scheme.label().to_string(),
                threads.to_string(),
                format!("{build_seconds:.2}"),
                format!("{:.2}x", serial_build / build_seconds.max(1e-9)),
                ms(query_seconds),
                format!("{:.2}x", serial_query / query_seconds.max(1e-9)),
                kib(vo_bytes),
                ms(client_seconds),
                pct(record.cache_hit_ratio()),
            ]);
            records.push(record);
        }
    }
    println!("{}", t.render());

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"n_queries\": {},\n  \"k\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        queries.len(),
        k,
        records
            .iter()
            .map(SweepRecord::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    match std::fs::write("BENCH_queries.json", &json) {
        Ok(()) => println!("wrote BENCH_queries.json ({} records)", records.len()),
        Err(e) => eprintln!("could not write BENCH_queries.json: {e}"),
    }
}

/// Transport-level numbers for one shard-sweep cell's sockets mode: the
/// same engines served over loopback TCP through the fan-out coordinator
/// (asserted byte-identical to the in-process run before anything is
/// recorded).
struct RpcCell {
    rpc_ms_per_query: f64,
    shard_p50_ms: Vec<f64>,
    shard_p95_ms: Vec<f64>,
    failovers: u64,
    /// Windowed SLO summary (`{"windowed_p50_us": …, …}`) read from the
    /// coordinator's rolling latency window mid-run — already JSON.
    slo_json: String,
    /// Per-kind fleet event counts (`{"failover": …, …}`) — already JSON.
    events_json: String,
}

impl RpcCell {
    fn json(&self) -> String {
        let list = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x:.6}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{{\"rpc_ms_per_query\": {:.6}, \"shard_p50_ms\": [{}], \
             \"shard_p95_ms\": [{}], \"failovers\": {}, \"slo\": {}, \
             \"events\": {}}}",
            self.rpc_ms_per_query,
            list(&self.shard_p50_ms),
            list(&self.shard_p95_ms),
            self.failovers,
            self.slo_json,
            self.events_json,
        )
    }
}

/// One `(scheme, shards)` cell of the shard sweep, as written to
/// `BENCH_shards.json`.
struct ShardRecord {
    scheme: &'static str,
    shards: usize,
    build_seconds: f64,
    sp_ms_per_query: f64,
    merge_ms_per_query: f64,
    vo_bytes: f64,
    client_verify_ms: f64,
    trim_queries_per_query: f64,
    trimmed_entries_per_query: f64,
    dedup_bytes_saved_per_query: f64,
    slowest_shard_ms: f64,
    merge_share: f64,
    cache_hit_ratio: f64,
    space: SpaceUsage,
    phases: PhaseQuantiles,
    rpc: RpcCell,
}

impl ShardRecord {
    fn json(&self) -> String {
        format!(
            "    {{\"scheme\": \"{}\", \"shards\": {}, \"build_s\": {:.6}, \
             \"sp_ms_per_query\": {:.6}, \"merge_ms_per_query\": {:.6}, \
             \"vo_bytes\": {}, \"client_verify_ms\": {:.6}, \
             \"trim_queries_per_query\": {:.3}, \"trimmed_entries_per_query\": {:.3}, \
             \"dedup_bytes_saved_per_query\": {:.1}, \"slowest_shard_ms\": {:.6}, \
             \"merge_share\": {:.6}, \"cache_hit_ratio\": {:.6}, \
             \"space\": {}, \"phases\": {}, \"rpc\": {}}}",
            self.scheme,
            self.shards,
            self.build_seconds,
            self.sp_ms_per_query,
            self.merge_ms_per_query,
            self.vo_bytes.round() as u64,
            self.client_verify_ms,
            self.trim_queries_per_query,
            self.trimmed_entries_per_query,
            self.dedup_bytes_saved_per_query,
            self.slowest_shard_ms,
            self.merge_share,
            self.cache_hit_ratio,
            space_json(&self.space),
            self.phases.json(),
            self.rpc.json(),
        )
    }
}

/// Shard-count sweep for sharded SP serving (not a paper figure): owner-side
/// sharded build seconds, SP-side fan-out query CPU (including the top-k
/// merge and the trim re-queries), VO bytes, and client `verify_sharded`
/// CPU for every scheme at 1/2/4/8 shards. The sharded top-k is bit-equal
/// to the monolith's for every cell (see the `shard_equivalence` suite),
/// and the merge-trimmed sub-VOs plus shared-section dedup keep VO bytes
/// near-flat in the shard count for fixed k; shards=1 is the monolith ADS
/// behind the sharded wire format. Every cell also runs a tie-straddle
/// probe: a query whose top-2 cuts through the fixture's three-way tie
/// trio, so multi-shard merges must fence across a contested tie boundary.
/// The machine-readable results land in `BENCH_shards.json` next to the
/// working directory, with per-response `trimmed_entries` /
/// `dedup_bytes_saved` read back from the obs registry counters.
///
/// Every cell also runs a sockets mode: the same engines are served over
/// loopback TCP behind the length-prefixed RPC boundary, the fan-out
/// coordinator replays the identical queries, the VO bytes are asserted
/// equal to the in-process run, and per-shard RPC round-trip latency
/// quantiles plus failover counts land in each record's nested `rpc`
/// object.
fn fig16(cache: &mut FixtureCache, scale: &Scale, quick: bool) {
    let fixture = cache.get(&scale.base_surf);
    let shard_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    println!(
        "\n== Fig. 16: shard-count sweep (sharded build + fan-out query + verify_sharded) ==\n\
         (expected: near-flat build seconds — the same postings are built,\n\
          just partitioned — and near-flat VO bytes: trimmed sub-VOs prove\n\
          only merge contributions plus one fence candidate each, and the\n\
          shared section dedups the common BoVW geometry)\n"
    );
    let mut t = Table::new([
        "scheme",
        "shards",
        "build_s",
        "sp_ms",
        "rpc_ms",
        "merge_ms",
        "merge_%",
        "slow_shard_ms",
        "vo_KiB",
        "client_ms",
        "trim_q",
        "trimmed",
        "dedup_KiB",
    ]);
    let queries = fixture.queries(scale.n_queries, scale.default_features);
    let tie_features = fixture.tie_query(scale.default_features);
    let trio = fixture.tie_trio();
    let k = scale.default_k;
    let reg = imageproof_obs::global();
    let mut records: Vec<ShardRecord> = Vec::new();
    for scheme in Scheme::ALL {
        let slug = scheme.slug();
        for &shards in shard_counts {
            let (sp, client, manifest, build_seconds) =
                fixture.build_sharded_system_timed(scheme, shards);
            // Aggregate footprint across the shard databases: the same
            // postings partitioned, so this should stay ~flat in S.
            let space = sp.shards().iter().fold(SpaceUsage::default(), |acc, s| {
                acc.merged(&s.database().space_usage())
            });
            let mut vo_bytes = 0.0f64;
            let mut client_seconds = 0.0f64;
            let mut merge_seconds = 0.0f64;
            let mut trim_queries = 0usize;
            let mut slowest_shard_seconds = 0.0f64;
            let mut merge_share = 0.0f64;
            let mut hashes_computed = 0usize;
            let mut hashes_cached = 0usize;
            let mut phases = PhaseQuantiles::default();
            // Per-response trim/dedup gains, read back from the obs
            // registry (the SP records them per sharded query).
            let trimmed_before = reg
                .counter(
                    "imageproof_sharded_trimmed_entries_total",
                    &[("scheme", slug)],
                )
                .get();
            let dedup_before = reg
                .counter(
                    "imageproof_sharded_dedup_bytes_saved_total",
                    &[("scheme", slug)],
                )
                .get();
            let t0 = imageproof_obs::Stopwatch::start();
            let responses: Vec<_> = queries
                .iter()
                .map(|features| {
                    sp.query_profiled(features, k, imageproof_core::Concurrency::serial())
                })
                .collect();
            let query_seconds = t0.elapsed_seconds() / queries.len().max(1) as f64;
            for (features, (response, stats, profile)) in queries.iter().zip(&responses) {
                phases.record(profile);
                vo_bytes += response.vo.wire_size() as f64;
                merge_seconds += stats.merge_seconds;
                trim_queries += stats.trim_queries;
                slowest_shard_seconds += stats.slowest_shard_seconds();
                merge_share += stats.merge_share();
                hashes_computed += stats.total_hashes_computed();
                hashes_cached += stats.total_hashes_cached();
                let t1 = imageproof_obs::Stopwatch::start();
                client
                    .verify_sharded(features, k, response, &manifest)
                    .expect("honest sharded response verifies");
                client_seconds += t1.elapsed_seconds();
            }
            let n = queries.len().max(1) as f64;
            let trimmed_entries = reg
                .counter(
                    "imageproof_sharded_trimmed_entries_total",
                    &[("scheme", slug)],
                )
                .get()
                - trimmed_before;
            let dedup_bytes_saved = reg
                .counter(
                    "imageproof_sharded_dedup_bytes_saved_total",
                    &[("scheme", slug)],
                )
                .get()
                - dedup_before;

            // Tie-straddle probe: top-2 cuts through the fixture's tie
            // trio, so for multi-shard cells the merge resolves (and
            // fences) a genuine cross-shard tie. Asserted, not hoped.
            let (tie_resp, _, _) =
                sp.query_profiled(&tie_features, 2, imageproof_core::Concurrency::serial());
            let inside = tie_resp
                .results
                .iter()
                .filter(|r| trio.contains(&r.id))
                .count();
            assert!(
                inside > 0 && inside < trio.len(),
                "{} S={shards}: top-2 must straddle the tie trio (got {inside} of {})",
                scheme.label(),
                trio.len(),
            );
            client
                .verify_sharded(&tie_features, 2, &tie_resp, &manifest)
                .expect("tie-straddle response verifies");

            // Sockets mode: dissolve the same engines into one loopback
            // shard server each, fan out through the RPC coordinator, and
            // require byte-identical VOs before recording any transport
            // number — the wire must never change what is served.
            let engines = sp.into_shards();
            let shard_count = engines.len() as u32;
            let mut servers = Vec::new();
            let mut scrapes = Vec::new();
            let mut endpoints = Vec::new();
            for (shard, engine) in engines.into_iter().enumerate() {
                let (server, scrape) =
                    imageproof_core::rpc::ShardServer::new(engine, shard as u32, shard_count)
                        .launch_observed("127.0.0.1:0")
                        .expect("launch loopback shard server with scrape endpoint");
                endpoints.push(imageproof_core::rpc::ShardEndpoint::single(server.addr()));
                servers.push(server);
                scrapes.push(scrape);
            }
            // Generous deadlines: a Baseline VO is tens of MiB, and a
            // loaded single-core CI machine can take far longer than the
            // default 5 s per round-trip. A bench cell must measure, not
            // time out.
            let rpc_config = imageproof_core::rpc::CoordinatorConfig {
                request_timeout_seconds: 600.0,
                connect_timeout_seconds: 30.0,
                hello_timeout_seconds: 60.0,
                ..imageproof_core::rpc::CoordinatorConfig::default()
            };
            let mut coord =
                imageproof_core::rpc::RpcCoordinator::connect(endpoints, &manifest, rpc_config)
                    .expect("coordinator connects to loopback shard servers");
            let coord_scrape = coord
                .launch_scrape("127.0.0.1:0")
                .expect("launch coordinator scrape endpoint");
            let mut rpc_total_seconds = 0.0;
            for (i, (features, (response, _, _))) in queries.iter().zip(&responses).enumerate() {
                let t2 = imageproof_obs::Stopwatch::start();
                let (rpc_resp, _) = coord.query(features, k).expect("loopback rpc query");
                rpc_total_seconds += t2.elapsed_seconds();
                assert_eq!(
                    rpc_resp.vo.to_wire(),
                    response.vo.to_wire(),
                    "{} S={shards}: socket VO bytes must equal in-process bytes",
                    scheme.label(),
                );
                if i == queries.len() / 2 {
                    // Mid-run scrape (untimed): the observability plane
                    // must answer while queries are in flight, with every
                    // shard reporting healthy under its pinned root.
                    let addr = coord_scrape.addr().to_string();
                    let (status, body) = imageproof_obs::http_get(&addr, "/healthz", 10.0)
                        .expect("scrape coordinator /healthz mid-run");
                    assert_eq!(status, 200, "coordinator /healthz must answer mid-run");
                    assert!(
                        body.contains("\"status\": \"healthy\""),
                        "{} S={shards}: fleet must be healthy mid-run, got: {body}",
                        scheme.label(),
                    );
                    for scrape in &scrapes {
                        let addr = scrape.addr().to_string();
                        let (status, metrics) = imageproof_obs::http_get(&addr, "/metrics", 10.0)
                            .expect("scrape shard /metrics mid-run");
                        assert_eq!(status, 200, "shard /metrics must answer mid-run");
                        assert!(
                            metrics.contains("imageproof_shard_queries_served_total"),
                            "shard /metrics must expose its serving counters",
                        );
                    }
                }
            }
            let rpc_seconds = rpc_total_seconds / n;
            let windowed = coord.fleet().windowed_latency();
            let wq = |p: f64| match windowed.quantile(p) {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            };
            let slo = coord.fleet().slo();
            let slo_json = format!(
                "{{\"windowed_p50_us\": {}, \"windowed_p90_us\": {}, \
                 \"windowed_p99_us\": {}, \"burn_rate\": {}, \
                 \"breached_total\": {}, \"observed_total\": {}}}",
                wq(0.5),
                wq(0.9),
                wq(0.99),
                match slo.burn_rate() {
                    Some(b) => format!("{b:.6}"),
                    None => "null".to_string(),
                },
                slo.breached_total(),
                slo.observed_total(),
            );
            let events_json = coord.fleet().events().counts_json();
            let cstats = coord.stats();
            let quantile_ms = |q: f64| -> Vec<f64> {
                (0..shards)
                    .map(|s| cstats.latency_quantile(s, q).unwrap_or(0.0) * 1e3)
                    .collect()
            };
            let rpc = RpcCell {
                rpc_ms_per_query: rpc_seconds * 1e3,
                shard_p50_ms: quantile_ms(0.5),
                shard_p95_ms: quantile_ms(0.95),
                failovers: cstats.failovers,
                slo_json,
                events_json,
            };
            drop(coord_scrape);
            drop(coord);
            for scrape in scrapes {
                scrape.shutdown();
            }
            for server in servers {
                server.shutdown();
            }

            vo_bytes /= n;
            client_seconds /= n;
            merge_seconds /= n;
            slowest_shard_seconds /= n;
            merge_share /= n;
            let total_hashes = hashes_computed + hashes_cached;
            let record = ShardRecord {
                scheme: scheme.label(),
                shards,
                build_seconds,
                sp_ms_per_query: query_seconds * 1e3,
                merge_ms_per_query: merge_seconds * 1e3,
                vo_bytes,
                client_verify_ms: client_seconds * 1e3,
                trim_queries_per_query: trim_queries as f64 / n,
                trimmed_entries_per_query: trimmed_entries as f64 / n,
                dedup_bytes_saved_per_query: dedup_bytes_saved as f64 / n,
                slowest_shard_ms: slowest_shard_seconds * 1e3,
                merge_share,
                cache_hit_ratio: if total_hashes == 0 {
                    0.0
                } else {
                    hashes_cached as f64 / total_hashes as f64
                },
                space,
                phases,
                rpc,
            };
            t.row([
                scheme.label().to_string(),
                shards.to_string(),
                format!("{build_seconds:.2}"),
                ms(query_seconds),
                ms(rpc_seconds),
                ms(merge_seconds),
                pct(record.merge_share),
                ms(slowest_shard_seconds),
                kib(vo_bytes),
                ms(client_seconds),
                format!("{:.1}", record.trim_queries_per_query),
                format!("{:.1}", record.trimmed_entries_per_query),
                kib(record.dedup_bytes_saved_per_query),
            ]);
            records.push(record);
        }
    }
    println!("{}", t.render());

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"n_queries\": {},\n  \"k\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        queries.len(),
        k,
        records
            .iter()
            .map(ShardRecord::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    match std::fs::write("BENCH_shards.json", &json) {
        Ok(()) => println!("wrote BENCH_shards.json ({} records)", records.len()),
        Err(e) => eprintln!("could not write BENCH_shards.json: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<u32> = Vec::new();
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                i += 1;
                figs.push(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--quick" => quick = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    if figs.is_empty() {
        figs = (6..=16).collect();
    }
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mut cache = FixtureCache::new();

    println!(
        "ImageProof evaluation harness — {} scale, {} queries per point",
        if quick { "quick" } else { "full" },
        scale.n_queries
    );
    for fig in figs {
        match fig {
            6 => fig6_7(&mut cache, &scale, DescriptorKind::Sift, 6),
            7 => fig6_7(&mut cache, &scale, DescriptorKind::Surf, 7),
            8 => fig8(&mut cache, &scale),
            9 => fig9(&mut cache, &scale),
            10 => fig10(&mut cache, &scale),
            11 => fig11(&mut cache, &scale),
            12 => fig12(&mut cache, &scale),
            13 => fig13(&mut cache, &scale),
            14 => fig14(&mut cache, &scale),
            15 => fig15(&mut cache, &scale, quick),
            16 => fig16(&mut cache, &scale, quick),
            other => {
                eprintln!(
                    "unknown figure {other}; Figs. 6-14 are the paper's, 15 is the \
                     thread sweep, 16 is the shard sweep"
                );
                std::process::exit(2);
            }
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: figures [--fig N]... [--quick]");
    std::process::exit(2);
}
