//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * number of MRKD trees (the paper fixes `n_t = 8`);
//! * AKM leaf-visit budget (`max_checks`, the paper fixes 32);
//! * the pop/check batching policy of `InvSearch` (the paper batches
//!   condition checks; we measure fixed vs adaptive batches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imageproof_akm::SparseBovw;
use imageproof_bench::fixture::{Fixture, FixtureConfig};
use imageproof_core::{IndexVariant, Scheme};
use imageproof_invindex::{inv_search_with_tuning, BoundsMode, SearchTuning};
use imageproof_mrkd::mrkd_search;
use imageproof_vision::DescriptorKind;

/// How much the forest size costs: SP-side MRKD search with 1..8 trees.
fn tree_count_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/mrkd_trees");
    group.sample_size(10);
    for n_trees in [1usize, 4, 8] {
        // Re-train with the ablated forest size (the codebook itself also
        // uses the forest, so this is a whole-system knob).
        let mut config = FixtureConfig::quick(DescriptorKind::Surf);
        config.seed ^= n_trees as u64; // decorrelate tree randomness
        let fixture = Fixture::build_with_akm_override(config, |akm| akm.n_trees = n_trees);
        let query = &fixture.queries(1, 60)[0];
        let system = fixture.system(Scheme::ImageProof);
        let db = system.0.database();
        let thresholds: Vec<f32> = query
            .iter()
            .map(|f| db.codebook.assign_with_threshold(f).1)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &n_trees, |b, _| {
            b.iter(|| mrkd_search(&db.mrkd, query, &thresholds).vo.trees.len())
        });
    }
    group.finish();
}

/// AKM accuracy/cost: leaf-visit budget of the assignment search.
fn max_checks_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/akm_max_checks");
    group.sample_size(10);
    for max_checks in [8usize, 32, 128] {
        let config = FixtureConfig::quick(DescriptorKind::Surf);
        let fixture = Fixture::build_with_akm_override(config, |akm| akm.max_checks = max_checks);
        let query = &fixture.queries(1, 60)[0];
        let system = fixture.system(Scheme::ImageProof);
        let db = system.0.database();
        group.bench_with_input(
            BenchmarkId::from_parameter(max_checks),
            &max_checks,
            |b, _| {
                b.iter(|| {
                    query
                        .iter()
                        .map(|f| db.codebook.assign(f) as usize)
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

/// Batching policy of the termination-condition checks.
fn batching_ablation(c: &mut Criterion) {
    let fixture = Fixture::build(FixtureConfig::quick(DescriptorKind::Surf));
    let system = fixture.system(Scheme::ImageProof);
    let db = system.0.database();
    let IndexVariant::Plain(index) = &db.inv else {
        unreachable!("ImageProof hosts a plain index");
    };
    let query = &fixture.queries(1, 60)[0];
    let bovw = SparseBovw::from_counts(query.iter().map(|f| (db.codebook.assign(f), 1)));

    let mut group = c.benchmark_group("ablation/inv_batching");
    group.sample_size(10);
    let policies = [
        (
            "per_posting",
            SearchTuning {
                initial_batch: 1,
                growth: 1,
                max_batch: 1,
            },
        ),
        (
            "fixed_16",
            SearchTuning {
                initial_batch: 16,
                growth: 1,
                max_batch: 16,
            },
        ),
        ("adaptive", SearchTuning::default()),
    ];
    for (name, tuning) in policies {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                inv_search_with_tuning(index, &bovw, 5, BoundsMode::CuckooFiltered, tuning)
                    .stats
                    .popped
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    tree_count_ablation,
    max_checks_ablation,
    batching_ablation
);
criterion_main!(benches);
