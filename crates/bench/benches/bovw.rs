//! Criterion micro-benchmarks for the BoVW-encoding step (paper Figs. 6–8):
//! SP search + VO generation and client verification, per scheme.
//!
//! These benches use the quick fixture scale; the `figures` binary runs the
//! full paper-shaped sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imageproof_bench::fixture::{Fixture, FixtureConfig};
use imageproof_core::Scheme;
use imageproof_mrkd::{mrkd_search, mrkd_search_baseline, verify_bovw, verify_bovw_baseline};
use imageproof_vision::DescriptorKind;

const SCHEMES: [Scheme; 3] = [Scheme::Baseline, Scheme::ImageProof, Scheme::OptimizedBovw];

fn bovw_sweep(c: &mut Criterion) {
    let fixture = Fixture::build(FixtureConfig::quick(DescriptorKind::Surf));
    let mut group = c.benchmark_group("bovw_sp/fig6-7");
    group.sample_size(10);
    for n_features in [50usize, 100] {
        let query = &fixture.queries(1, n_features)[0];
        for scheme in SCHEMES {
            let system = fixture.system(scheme);
            let db = system.0.database();
            let thresholds: Vec<f32> = query
                .iter()
                .map(|f| db.codebook.assign_with_threshold(f).1)
                .collect();
            group.bench_with_input(
                BenchmarkId::new(scheme.label(), n_features),
                &n_features,
                |b, _| {
                    b.iter(|| {
                        if scheme.shares_nodes() {
                            let out = mrkd_search(&db.mrkd, query, &thresholds);
                            out.vo.trees.len()
                        } else {
                            let (vo, _, _) = mrkd_search_baseline(&db.mrkd, query, &thresholds);
                            vo.per_query.len()
                        }
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("bovw_client/fig6-7");
    group.sample_size(10);
    let n_features = 100;
    let query = &fixture.queries(1, n_features)[0];
    for scheme in SCHEMES {
        let system = fixture.system(scheme);
        let db = system.0.database();
        let thresholds: Vec<f32> = query
            .iter()
            .map(|f| db.codebook.assign_with_threshold(f).1)
            .collect();
        if scheme.shares_nodes() {
            let out = mrkd_search(&db.mrkd, query, &thresholds);
            group.bench_function(BenchmarkId::new(scheme.label(), n_features), |b| {
                b.iter(|| verify_bovw(&out.vo, query, scheme.candidate_mode()).expect("verifies"))
            });
        } else {
            let (vo, _, _) = mrkd_search_baseline(&db.mrkd, query, &thresholds);
            group.bench_function(BenchmarkId::new(scheme.label(), n_features), |b| {
                b.iter(|| verify_bovw_baseline(&vo, query).expect("verifies"))
            });
        }
    }
    group.finish();
}

fn bovw_codebook(c: &mut Criterion) {
    // Fig. 8: the BoVW step across codebook sizes (ImageProof scheme).
    let mut group = c.benchmark_group("bovw_sp/fig8");
    group.sample_size(10);
    for codebook_size in [256usize, 512] {
        let fixture = Fixture::build(FixtureConfig {
            codebook_size,
            ..FixtureConfig::quick(DescriptorKind::Surf)
        });
        let query = &fixture.queries(1, 60)[0];
        let system = fixture.system(Scheme::ImageProof);
        let db = system.0.database();
        let thresholds: Vec<f32> = query
            .iter()
            .map(|f| db.codebook.assign_with_threshold(f).1)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("ImageProof", codebook_size),
            &codebook_size,
            |b, _| {
                b.iter(|| {
                    mrkd_search(&db.mrkd, query, &thresholds)
                        .stats
                        .nodes_traversed
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bovw_sweep, bovw_codebook);
criterion_main!(benches);
