//! Criterion micro-benchmarks for the inverted-index step (paper
//! Figs. 9–11): `InvSearch` vs the [15]-style Baseline vs the grouped
//! Optimized variant, plus client verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imageproof_akm::SparseBovw;
use imageproof_bench::fixture::{Fixture, FixtureConfig};
use imageproof_core::{IndexVariant, Scheme};
use imageproof_crypto::Digest;
use imageproof_invindex::grouped::{grouped_search, verify_grouped_topk};
use imageproof_invindex::{inv_search, verify_topk, BoundsMode};
use imageproof_vision::DescriptorKind;
use std::collections::BTreeMap;

fn query_bovw(fixture: &Fixture, scheme: Scheme, n_features: usize) -> SparseBovw {
    let query = &fixture.queries(1, n_features)[0];
    let system = fixture.system(scheme);
    let db = system.0.database();
    SparseBovw::from_counts(query.iter().map(|f| (db.codebook.assign(f), 1)))
}

/// Figs. 9–10: search cost per scheme.
fn inv_search_bench(c: &mut Criterion) {
    let fixture = Fixture::build(FixtureConfig::quick(DescriptorKind::Surf));
    let mut group = c.benchmark_group("inv_sp/fig9-10");
    group.sample_size(10);
    let k = 5;
    for (scheme, mode) in [
        (Scheme::Baseline, Some(BoundsMode::MaxBound)),
        (Scheme::ImageProof, Some(BoundsMode::CuckooFiltered)),
        (Scheme::OptimizedBoth, None),
    ] {
        let bovw = query_bovw(&fixture, scheme, 60);
        let system = fixture.system(scheme);
        let db = system.0.database();
        match (&db.inv, mode) {
            (IndexVariant::Plain(index), Some(mode)) => {
                group.bench_function(BenchmarkId::new(scheme.label(), k), |b| {
                    b.iter(|| inv_search(index, &bovw, k, mode).stats.popped)
                });
            }
            (IndexVariant::Grouped(index), None) => {
                group.bench_function(BenchmarkId::new(scheme.label(), k), |b| {
                    b.iter(|| grouped_search(index, &bovw, k).stats.popped)
                });
            }
            _ => unreachable!("scheme/index variant mismatch"),
        }
    }
    group.finish();
}

/// Fig. 11: client verification cost as k grows (ImageProof + Optimized).
fn inv_verify_bench(c: &mut Criterion) {
    let fixture = Fixture::build(FixtureConfig::quick(DescriptorKind::Surf));
    let mut group = c.benchmark_group("inv_client/fig11");
    group.sample_size(10);
    for k in [1usize, 10] {
        // ImageProof (plain + filters).
        let scheme = Scheme::ImageProof;
        let bovw = query_bovw(&fixture, scheme, 60);
        let system = fixture.system(scheme);
        let db = system.0.database();
        if let IndexVariant::Plain(index) = &db.inv {
            let digests: BTreeMap<u32, Digest> = index
                .lists()
                .iter()
                .map(|l| (l.cluster, l.digest))
                .collect();
            let out = inv_search(index, &bovw, k, BoundsMode::CuckooFiltered);
            let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
            group.bench_function(BenchmarkId::new(scheme.label(), k), |b| {
                b.iter(|| {
                    verify_topk(
                        &out.vo,
                        &bovw,
                        &digests,
                        &claimed,
                        k,
                        BoundsMode::CuckooFiltered,
                    )
                    .expect("verifies")
                })
            });
        }

        // Optimized (grouped).
        let scheme = Scheme::OptimizedBoth;
        let bovw = query_bovw(&fixture, scheme, 60);
        let system = fixture.system(scheme);
        let db = system.0.database();
        if let IndexVariant::Grouped(index) = &db.inv {
            let digests: BTreeMap<u32, Digest> = index
                .lists()
                .iter()
                .map(|l| (l.cluster, l.digest))
                .collect();
            let out = grouped_search(index, &bovw, k);
            let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
            group.bench_function(BenchmarkId::new(scheme.label(), k), |b| {
                b.iter(|| {
                    verify_grouped_topk(&out.vo, &bovw, &digests, &claimed, k).expect("verifies")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, inv_search_bench, inv_verify_bench);
criterion_main!(benches);
