//! Criterion micro-benchmarks for the complete authenticated query path
//! (paper Figs. 12–14): SP `query` and client `verify` per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imageproof_bench::fixture::{Fixture, FixtureConfig};
use imageproof_core::Scheme;
use imageproof_vision::DescriptorKind;

fn overall_sp(c: &mut Criterion) {
    let fixture = Fixture::build(FixtureConfig::quick(DescriptorKind::Surf));
    let mut group = c.benchmark_group("overall_sp/fig12-14");
    group.sample_size(10);
    let query = &fixture.queries(1, 60)[0];
    for scheme in Scheme::ALL {
        let system = fixture.system(scheme);
        group.bench_function(BenchmarkId::new(scheme.label(), 60), |b| {
            b.iter(|| system.0.query(query, 5).0.results.len())
        });
    }
    group.finish();
}

fn overall_client(c: &mut Criterion) {
    let fixture = Fixture::build(FixtureConfig::quick(DescriptorKind::Surf));
    let mut group = c.benchmark_group("overall_client/fig12-14");
    group.sample_size(10);
    let query = &fixture.queries(1, 60)[0];
    for scheme in Scheme::ALL {
        let system = fixture.system(scheme);
        let (response, _) = system.0.query(query, 5);
        group.bench_function(BenchmarkId::new(scheme.label(), 60), |b| {
            b.iter(|| {
                system
                    .1
                    .verify(query, 5, &response)
                    .expect("honest response verifies")
                    .topk
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, overall_sp, overall_client);
criterion_main!(benches);
