//! Criterion micro-benchmarks for the cryptographic and data-structure
//! substrates (not tied to a specific paper figure; these quantify the
//! building blocks every figure's costs decompose into).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imageproof_akm::rkd::RkdForest;
use imageproof_crypto::sha3::Sha3_256;
use imageproof_crypto::{MerkleTree, SigningKey};
use imageproof_cuckoo::{max_count, CuckooFilter};
use rand_like::SplitMix;

/// Tiny deterministic generator so the bench crate needs no extra deps.
mod rand_like {
    pub struct SplitMix(pub u64);
    impl SplitMix {
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        pub fn f32(&mut self) -> f32 {
            (self.next() >> 40) as f32 / (1u64 << 24) as f32
        }
    }
}

fn sha3_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha3_256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| Sha3_256::digest(&data))
        });
    }
    group.finish();
}

fn ed25519_bench(c: &mut Criterion) {
    let sk = SigningKey::from_seed(&[1u8; 32]);
    let pk = sk.public_key();
    let msg = [0x5au8; 32];
    let sig = sk.sign(&msg);
    c.bench_function("ed25519/sign", |b| b.iter(|| sk.sign(&msg)));
    c.bench_function("ed25519/verify", |b| b.iter(|| pk.verify(&msg, &sig)));
}

fn merkle_bench(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..1024u32).map(|i| i.to_le_bytes().to_vec()).collect();
    c.bench_function("merkle/build_1024", |b| {
        b.iter(|| MerkleTree::from_leaf_data(&leaves).root())
    });
    let tree = MerkleTree::from_leaf_data(&leaves);
    let proof = tree.prove(500);
    let root = tree.root();
    c.bench_function("merkle/verify_path", |b| {
        b.iter(|| proof.verify_data(&leaves[500], &root))
    });
}

fn cuckoo_bench(c: &mut Criterion) {
    let mut filter = CuckooFilter::with_capacity(10_000);
    for i in 0..10_000u64 {
        filter.insert(i).expect("sized");
    }
    c.bench_function("cuckoo/lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 20_000;
            filter.contains(i)
        })
    });
    let filters: Vec<CuckooFilter> = (0..32)
        .map(|f| {
            let mut filter = CuckooFilter::with_buckets(256);
            for i in 0..400u64 {
                filter.insert(i * 32 + f).expect("room");
            }
            filter
        })
        .collect();
    let refs: Vec<&CuckooFilter> = filters.iter().collect();
    c.bench_function("cuckoo/max_count_32x256", |b| b.iter(|| max_count(&refs)));
}

fn rkd_bench(c: &mut Criterion) {
    let mut rng = SplitMix(42);
    let points: Vec<Vec<f32>> = (0..4096)
        .map(|_| (0..64).map(|_| rng.f32()).collect())
        .collect();
    let forest = RkdForest::build(&points, 8, 2, 7);
    let query: Vec<f32> = (0..64).map(|_| rng.f32()).collect();
    c.bench_function("rkd/approx_nearest_4096x64d", |b| {
        b.iter(|| forest.approx_nearest(&points, &query, 32).cluster)
    });
    c.bench_function("rkd/exact_nearest_4096x64d", |b| {
        b.iter(|| forest.exact_nearest(&points, &query, 32).cluster)
    });
}

criterion_group!(benches, sha3_bench, ed25519_bench, merkle_bench, cuckoo_bench, rkd_bench);
criterion_main!(benches);
