//! Criterion micro-benchmarks for the cryptographic and data-structure
//! substrates (not tied to a specific paper figure; these quantify the
//! building blocks every figure's costs decompose into).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use imageproof_akm::kernel::{dist_sq, dist_sq_scalar, dist_sq_within};
use imageproof_akm::rkd::RkdForest;
use imageproof_crypto::sha3::Sha3_256;
use imageproof_crypto::wire::Writer;
use imageproof_crypto::{Digest, MerkleTree, SigningKey};
use imageproof_cuckoo::{max_count, CuckooFilter};
use rand_like::SplitMix;

/// Tiny deterministic generator so the bench crate needs no extra deps.
mod rand_like {
    pub struct SplitMix(pub u64);
    impl SplitMix {
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        pub fn f32(&mut self) -> f32 {
            (self.next() >> 40) as f32 / (1u64 << 24) as f32
        }
    }
}

fn sha3_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha3_256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| Sha3_256::digest(&data))
        });
    }
    group.finish();
}

fn ed25519_bench(c: &mut Criterion) {
    let sk = SigningKey::from_seed(&[1u8; 32]);
    let pk = sk.public_key();
    let msg = [0x5au8; 32];
    let sig = sk.sign(&msg);
    c.bench_function("ed25519/sign", |b| b.iter(|| sk.sign(&msg)));
    c.bench_function("ed25519/verify", |b| b.iter(|| pk.verify(&msg, &sig)));
}

fn merkle_bench(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..1024u32).map(|i| i.to_le_bytes().to_vec()).collect();
    c.bench_function("merkle/build_1024", |b| {
        b.iter(|| MerkleTree::from_leaf_data(&leaves).root())
    });
    let tree = MerkleTree::from_leaf_data(&leaves);
    let proof = tree.prove(500);
    let root = tree.root();
    c.bench_function("merkle/verify_path", |b| {
        b.iter(|| proof.verify_data(&leaves[500], &root))
    });
}

fn cuckoo_bench(c: &mut Criterion) {
    let mut filter = CuckooFilter::with_capacity(10_000);
    for i in 0..10_000u64 {
        filter.insert(i).expect("sized");
    }
    c.bench_function("cuckoo/lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 20_000;
            filter.contains(i)
        })
    });
    let filters: Vec<CuckooFilter> = (0..32)
        .map(|f| {
            let mut filter = CuckooFilter::with_buckets(256);
            for i in 0..400u64 {
                filter.insert(i * 32 + f).expect("room");
            }
            filter
        })
        .collect();
    let refs: Vec<&CuckooFilter> = filters.iter().collect();
    c.bench_function("cuckoo/max_count_32x256", |b| b.iter(|| max_count(&refs)));
}

fn rkd_bench(c: &mut Criterion) {
    let mut rng = SplitMix(42);
    let points: Vec<Vec<f32>> = (0..4096)
        .map(|_| (0..64).map(|_| rng.f32()).collect())
        .collect();
    let forest = RkdForest::build(&points, 8, 2, 7);
    let query: Vec<f32> = (0..64).map(|_| rng.f32()).collect();
    c.bench_function("rkd/approx_nearest_4096x64d", |b| {
        b.iter(|| forest.approx_nearest(&points, &query, 32).cluster)
    });
    c.bench_function("rkd/exact_nearest_4096x64d", |b| {
        b.iter(|| forest.exact_nearest(&points, &query, 32).cluster)
    });
}

fn dist_kernel_bench(c: &mut Criterion) {
    let mut rng = SplitMix(7);
    let mut group = c.benchmark_group("dist_sq");
    for dim in [64usize, 128] {
        let a: Vec<f32> = (0..dim).map(|_| rng.f32()).collect();
        let b: Vec<f32> = (0..dim).map(|_| rng.f32()).collect();
        // A limit around half the expected distance makes the early-exit
        // variant representative: roughly half its checkpoints fire.
        let limit = dist_sq(&a, &b) * 0.5;
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |bch, _| {
            bch.iter(|| dist_sq_scalar(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("chunked", dim), &dim, |bch, _| {
            bch.iter(|| dist_sq(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("chunked_within", dim), &dim, |bch, _| {
            bch.iter(|| dist_sq_within(&a, &b, limit))
        });
    }
    group.finish();
}

fn sha3_reuse_bench(c: &mut Criterion) {
    // One VO node digest is a handful of short absorbs; the memoized hot
    // path replaces "fresh hasher per digest" with one streaming state
    // drained via `finalize_reset`.
    let chunks: [&[u8]; 3] = [&[0x01u8; 8], &[0x5au8; 32], &[0xc3u8; 32]];
    let mut group = c.benchmark_group("sha3_256_stream");
    group.bench_function(BenchmarkId::from_parameter("fresh_per_digest_x64"), |b| {
        b.iter(|| {
            let mut last = [0u8; 32];
            for _ in 0..64 {
                let mut h = Sha3_256::new();
                for chunk in chunks {
                    h.update(chunk);
                }
                last = h.finalize();
            }
            last
        })
    });
    group.bench_function(
        BenchmarkId::from_parameter("reused_finalize_reset_x64"),
        |b| {
            b.iter(|| {
                let mut h = Sha3_256::new();
                let mut last = [0u8; 32];
                for _ in 0..64 {
                    for chunk in chunks {
                        h.update(chunk);
                    }
                    last = h.finalize_reset();
                }
                last
            })
        },
    );
    group.finish();
}

fn wire_writer_bench(c: &mut Criterion) {
    // A synthetic VO record: digests + varints + coordinates, the mix the
    // real responses serialize. Compares growing a fresh writer per record
    // against `reset` on a pre-sized one (the zero-realloc assembly path).
    let digest = Digest([0x77u8; 32]);
    let coords: Vec<f32> = (0..64).map(|i| i as f32 * 0.25).collect();
    let encode = |w: &mut Writer| {
        w.seq_len(coords.len());
        for &v in &coords {
            w.f32(v);
        }
        for i in 0..8u64 {
            w.digest(&digest);
            w.varint(i * 1009);
        }
    };
    let mut group = c.benchmark_group("wire_writer");
    group.bench_function(BenchmarkId::from_parameter("fresh_per_record_x64"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..64 {
                let mut w = Writer::new();
                encode(&mut w);
                total += w.len();
            }
            total
        })
    });
    group.bench_function(BenchmarkId::from_parameter("reset_reuse_x64"), |b| {
        let mut w = Writer::with_capacity(1024);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..64 {
                w.reset();
                encode(&mut w);
                total += w.len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    sha3_bench,
    ed25519_bench,
    merkle_bench,
    cuckoo_bench,
    rkd_bench,
    dist_kernel_bench,
    sha3_reuse_bench,
    wire_writer_bench
);
criterion_main!(benches);
