//! # imageproof-vision
//!
//! Synthetic image corpus and local-feature substrate.
//!
//! The paper evaluates on MirFlickr1M with real SIFT (128-d) and SURF (64-d)
//! descriptors. Neither the corpus nor a mature Rust SIFT extractor is
//! available offline, so this crate substitutes a *latent visual-word model*
//! (see `DESIGN.md` §3): a fixed set of ground-truth word centers in
//! descriptor space; each synthetic image draws its features from a small
//! per-image subset of words (its "topics"), with word popularity following a
//! Zipf distribution and per-feature Gaussian perturbation. This preserves
//! everything the authenticated data structures exercise — descriptor
//! dimensionality, BoVW sparsity, skewed inverted-list lengths, and a
//! meaningful nearest-neighbour structure — while remaining fully
//! deterministic under a seed.

pub mod corpus;
pub mod descriptor;
pub mod zipf;

pub use corpus::{Corpus, CorpusConfig, SyntheticImage};
pub use descriptor::{l2_distance, l2_distance_sq, DescriptorKind, ImageId};
pub use zipf::Zipf;
