//! Synthetic image corpus generation under a latent visual-word model.

use crate::descriptor::{DescriptorKind, ImageId};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for corpus generation. All randomness flows from `seed`, so
/// a config fully determines the corpus.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CorpusConfig {
    /// Descriptor family (fixes dimensionality).
    pub kind: DescriptorKind,
    /// Number of database images.
    pub n_images: usize,
    /// Mean number of local features per image (actual counts vary ±25%).
    pub features_per_image: usize,
    /// Number of latent visual words the generator draws from. Larger values
    /// yield sparser BoVW vectors for a fixed codebook size.
    pub n_latent_words: usize,
    /// Number of latent words an individual image touches (its "topics").
    pub words_per_image: usize,
    /// Zipf exponent for word popularity (≈1.0 matches natural corpora).
    pub zipf_exponent: f64,
    /// Standard deviation of the Gaussian perturbation applied to each
    /// descriptor around its word center (descriptor space is `[0, 1]^d`).
    pub noise_sigma: f32,
    /// Byte length of the synthetic raw image payload (what gets signed).
    pub image_bytes: usize,
    /// Master seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// A small, fast corpus used throughout unit tests and examples.
    pub fn small(kind: DescriptorKind) -> Self {
        CorpusConfig {
            kind,
            n_images: 200,
            features_per_image: 40,
            n_latent_words: 500,
            words_per_image: 12,
            zipf_exponent: 1.0,
            noise_sigma: 0.02,
            image_bytes: 256,
            seed: 0x1_0a6e,
        }
    }
}

/// One synthetic database image: an opaque byte payload (stands in for the
/// JPEG the owner signs) plus its extracted local features.
#[derive(Clone, Debug)]
pub struct SyntheticImage {
    pub id: ImageId,
    /// Raw image payload; unique per image so signatures are distinct.
    pub data: Vec<u8>,
    /// Extracted descriptors, each of `kind.dim()` components.
    pub features: Vec<Vec<f32>>,
    /// Ground-truth latent word of each feature (test oracle only; a real
    /// extractor would not know this).
    pub latent_words: Vec<usize>,
}

/// A generated corpus: the latent model plus every image.
#[derive(Clone, Debug)]
pub struct Corpus {
    pub config: CorpusConfig,
    /// Latent word centers, `n_latent_words` rows of `kind.dim()` columns.
    pub word_centers: Vec<Vec<f32>>,
    pub images: Vec<SyntheticImage>,
}

/// Samples a standard normal via Box–Muller (avoids needing `rand_distr`).
fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

impl Corpus {
    /// Generates a corpus from `config`.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        assert!(config.n_images > 0, "corpus needs images");
        assert!(config.n_latent_words > 0, "corpus needs latent words");
        assert!(
            config.words_per_image > 0 && config.words_per_image <= config.n_latent_words,
            "words_per_image must be in 1..=n_latent_words"
        );
        let dim = config.kind.dim();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let word_centers: Vec<Vec<f32>> = (0..config.n_latent_words)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect())
            .collect();

        let zipf = Zipf::new(config.n_latent_words, config.zipf_exponent);
        let images = (0..config.n_images)
            .map(|i| Self::generate_image(i as ImageId, config, &word_centers, &zipf, &mut rng))
            .collect();

        Corpus {
            config: config.clone(),
            word_centers,
            images,
        }
    }

    fn generate_image(
        id: ImageId,
        config: &CorpusConfig,
        word_centers: &[Vec<f32>],
        zipf: &Zipf,
        rng: &mut StdRng,
    ) -> SyntheticImage {
        // Topic set: distinct Zipf-popular words this image is "about".
        let mut topics = Vec::with_capacity(config.words_per_image);
        while topics.len() < config.words_per_image {
            let w = zipf.sample(rng);
            if !topics.contains(&w) {
                topics.push(w);
            }
        }

        let spread = config.features_per_image / 4;
        let n_features = if spread == 0 {
            config.features_per_image
        } else {
            rng.gen_range(config.features_per_image - spread..=config.features_per_image + spread)
        };

        let mut features = Vec::with_capacity(n_features);
        let mut latent_words = Vec::with_capacity(n_features);
        for _ in 0..n_features {
            let word = topics[rng.gen_range(0..topics.len())];
            features.push(perturb(&word_centers[word], config.noise_sigma, rng));
            latent_words.push(word);
        }

        let data: Vec<u8> = (0..config.image_bytes).map(|_| rng.gen()).collect();
        SyntheticImage {
            id,
            data,
            features,
            latent_words,
        }
    }

    /// Derives a query: fresh descriptors re-sampled around the latent words
    /// of database image `source`, emulating "photograph the same scene
    /// again". `n_features` controls query size (the paper sweeps 100–500).
    pub fn query_from_image(&self, source: ImageId, n_features: usize, seed: u64) -> Vec<Vec<f32>> {
        let img = &self.images[source as usize];
        assert!(!img.latent_words.is_empty(), "source image has no features");
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (0..n_features)
            .map(|_| {
                let word = img.latent_words[rng.gen_range(0..img.latent_words.len())];
                perturb(&self.word_centers[word], self.config.noise_sigma, &mut rng)
            })
            .collect()
    }

    /// All descriptors of all images, flattened — the training set for
    /// codebook construction.
    pub fn all_features(&self) -> impl Iterator<Item = &[f32]> {
        self.images
            .iter()
            .flat_map(|img| img.features.iter().map(Vec::as_slice))
    }

    /// Total number of descriptors in the corpus.
    pub fn total_features(&self) -> usize {
        self.images.iter().map(|i| i.features.len()).sum()
    }
}

fn perturb(center: &[f32], sigma: f32, rng: &mut StdRng) -> Vec<f32> {
    center
        .iter()
        .map(|&c| (c + sigma * sample_gaussian(rng)).clamp(0.0, 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(&CorpusConfig::small(DescriptorKind::Surf))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.images.len(), b.images.len());
        assert_eq!(a.images[7].data, b.images[7].data);
        assert_eq!(a.images[7].features, b.images[7].features);
    }

    #[test]
    fn dimensions_match_kind() {
        let c = small();
        assert!(c
            .all_features()
            .all(|f| f.len() == DescriptorKind::Surf.dim()));
        let sift = Corpus::generate(&CorpusConfig {
            n_images: 5,
            ..CorpusConfig::small(DescriptorKind::Sift)
        });
        assert!(sift.all_features().all(|f| f.len() == 128));
    }

    #[test]
    fn image_ids_are_sequential() {
        let c = small();
        for (i, img) in c.images.iter().enumerate() {
            assert_eq!(img.id, i as ImageId);
        }
    }

    #[test]
    fn image_payloads_are_distinct() {
        let c = small();
        assert_ne!(c.images[0].data, c.images[1].data);
    }

    #[test]
    fn features_stay_in_unit_cube() {
        let c = small();
        for f in c.all_features() {
            for &v in f {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn queries_are_near_their_source_image_words() {
        let c = small();
        let q = c.query_from_image(3, 50, 99);
        assert_eq!(q.len(), 50);
        // Every query feature must be close to *some* latent word center of
        // the source image (within a generous multiple of the noise).
        let img = &c.images[3];
        let max_noise = c.config.noise_sigma * 6.0 * (c.config.kind.dim() as f32).sqrt();
        for f in &q {
            let best = img
                .latent_words
                .iter()
                .map(|&w| crate::descriptor::l2_distance(f, &c.word_centers[w]))
                .fold(f32::INFINITY, f32::min);
            assert!(best <= max_noise, "query feature strayed: {best}");
        }
    }

    #[test]
    fn zipf_skew_shows_in_word_usage() {
        let c = Corpus::generate(&CorpusConfig {
            n_images: 400,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        let mut usage = vec![0u32; c.config.n_latent_words];
        for img in &c.images {
            for &w in &img.latent_words {
                usage[w] += 1;
            }
        }
        let head: u32 = usage[..10].iter().sum();
        let tail: u32 = usage[c.config.n_latent_words - 10..].iter().sum();
        assert!(head > tail * 3, "head {head} should dwarf tail {tail}");
    }

    #[test]
    fn feature_counts_vary_but_average_near_mean() {
        let c = small();
        let total = c.total_features();
        let mean = total as f64 / c.images.len() as f64;
        let target = c.config.features_per_image as f64;
        assert!((mean - target).abs() < target * 0.15, "mean {mean}");
    }
}
