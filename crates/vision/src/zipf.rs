//! Zipf-distributed sampling over ranks `0..n`.
//!
//! Visual-word popularity in real BoVW corpora is heavily skewed — the paper
//! leans on this twice: posting-list lengths vary widely (§IV-B complexity
//! discussion) and "in a typical inverted list, most frequency counts are
//! small" (§VI-B). Sampling latent words by rank with probability
//! proportional to `1 / (rank+1)^s` reproduces both effects.

use rand::Rng;

/// A pre-tabulated Zipf sampler (probability of rank `i` proportional to
/// `1/(i+1)^s`).
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[i] = P(rank <= i)`, normalized to 1.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when only one rank exists.
    pub fn is_empty(&self) -> bool {
        false // construction rejects n == 0
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose cumulative probability reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should beat rank 10");
        assert!(counts[0] > counts[100] * 5, "heavy head expected");
    }

    #[test]
    fn exponent_zero_is_uniform_ish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
