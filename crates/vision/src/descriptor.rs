//! Descriptor kinds and distance functions.

/// Identifier of an image in the outsourced database.
///
/// The paper writes image ids as small integers (Table II); a `u64` matches
/// any realistic catalogue size.
pub type ImageId = u64;

/// The family of local feature descriptor being simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DescriptorKind {
    /// Scale-invariant feature transform: 128-dimensional (Lowe, IJCV '04).
    Sift,
    /// Speeded-up robust features: 64-dimensional (Bay et al., CVIU '08).
    Surf,
}

impl DescriptorKind {
    /// Dimensionality of one descriptor vector.
    pub fn dim(self) -> usize {
        match self {
            DescriptorKind::Sift => 128,
            DescriptorKind::Surf => 64,
        }
    }
}

/// Squared Euclidean distance between two descriptors.
///
/// # Panics
/// Panics when the slices have different lengths — mixing descriptor kinds
/// is a programming error, not a data error.
#[inline]
pub fn l2_distance_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "descriptor dimensionality mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two descriptors.
#[inline]
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    l2_distance_sq(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_paper_dimensionalities() {
        assert_eq!(DescriptorKind::Sift.dim(), 128);
        assert_eq!(DescriptorKind::Surf.dim(), 64);
    }

    #[test]
    fn distance_of_identical_vectors_is_zero() {
        let v = vec![0.25f32; 128];
        assert_eq!(l2_distance_sq(&v, &v), 0.0);
    }

    #[test]
    fn distance_matches_hand_computation() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert_eq!(l2_distance_sq(&a, &b), 25.0);
        assert_eq!(l2_distance(&a, &b), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mismatched_dims_panic() {
        let _ = l2_distance_sq(&[1.0], &[1.0, 2.0]);
    }
}
