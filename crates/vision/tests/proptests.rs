//! Property-based tests for the synthetic corpus generator.

use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generation is a pure function of the config.
    #[test]
    fn corpus_is_deterministic(seed in any::<u64>(), n_images in 1usize..40) {
        let config = CorpusConfig {
            seed,
            n_images,
            ..CorpusConfig::small(DescriptorKind::Surf)
        };
        let a = Corpus::generate(&config);
        let b = Corpus::generate(&config);
        prop_assert_eq!(a.images.len(), b.images.len());
        for (x, y) in a.images.iter().zip(&b.images) {
            prop_assert_eq!(&x.data, &y.data);
            prop_assert_eq!(&x.features, &y.features);
            prop_assert_eq!(&x.latent_words, &y.latent_words);
        }
    }

    /// Every descriptor is finite, in the unit cube, and of the right
    /// dimensionality.
    #[test]
    fn descriptors_are_well_formed(seed in any::<u64>(), sigma in 0.0f32..0.2) {
        let config = CorpusConfig {
            seed,
            n_images: 10,
            noise_sigma: sigma,
            ..CorpusConfig::small(DescriptorKind::Sift)
        };
        let corpus = Corpus::generate(&config);
        for f in corpus.all_features() {
            prop_assert_eq!(f.len(), 128);
            for &v in f {
                prop_assert!(v.is_finite());
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    /// Queries never reference words outside the source image's topics.
    #[test]
    fn queries_are_reproducible(seed in any::<u64>(), qseed in any::<u64>()) {
        let config = CorpusConfig {
            seed,
            n_images: 20,
            ..CorpusConfig::small(DescriptorKind::Surf)
        };
        let corpus = Corpus::generate(&config);
        let a = corpus.query_from_image(7, 25, qseed);
        let b = corpus.query_from_image(7, 25, qseed);
        prop_assert_eq!(a, b);
    }

    /// Zipf samples stay in range and the empirical head dominates the tail
    /// for positive exponents.
    #[test]
    fn zipf_is_well_behaved(n in 2usize..200, s in 0.1f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut head = 0u32;
        let mut total = 0u32;
        for _ in 0..2000 {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            total += 1;
            if r < n.div_ceil(2) {
                head += 1;
            }
        }
        // The first half of the ranks must receive at least half the mass.
        prop_assert!(head * 2 >= total, "head {} of {}", head, total);
    }
}
