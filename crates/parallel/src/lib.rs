//! # imageproof-parallel
//!
//! The workspace-wide deterministic execution layer. Every hot path of the
//! reproduction (owner-side ADS construction, SP-side `MRKDSearch` and
//! batch serving, Merkle level hashing) fans work out through the helpers
//! here, controlled by one [`Concurrency`] knob.
//!
//! ## The determinism contract
//!
//! A VO is a cryptographic artifact: its bytes are reconstructed and hashed
//! by the client, so parallel execution must produce *bit-identical* output
//! to serial execution. The helpers guarantee this by construction:
//!
//! * work items are pure functions of their index (workers never share
//!   mutable state with the item functions);
//! * results are merged **in item-index order**, regardless of which worker
//!   computed them or in which order they finished.
//!
//! Scheduling is dynamic (an atomic next-index counter), so skewed item
//! costs balance across workers without affecting the merged order.
//! `threads = 1` short-circuits to a plain serial loop — no threads are
//! spawned and the call is exactly the pre-existing serial code path.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Records one parallel section into the global observability registry.
/// No-op when recording is disabled; never affects item results or order.
fn record_section(kind: &'static str, items: usize) {
    if !imageproof_obs::enabled() {
        return;
    }
    let reg = imageproof_obs::global();
    let labels = [("kind", kind)];
    reg.counter("imageproof_parallel_sections_total", &labels)
        .inc();
    reg.counter("imageproof_parallel_items_total", &labels)
        .add(items as u64);
}

/// The thread-count knob threaded through the scheme API
/// (`SystemConfig` in `imageproof-core`).
///
/// `threads` is the number of worker threads a parallel section may use;
/// `1` means strictly serial execution on the calling thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Concurrency {
    pub threads: usize,
}

impl Concurrency {
    /// Strictly serial execution (the default everywhere).
    pub const fn serial() -> Concurrency {
        Concurrency { threads: 1 }
    }

    /// Execution with up to `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Concurrency {
        Concurrency {
            threads: threads.max(1),
        }
    }

    /// One worker per available hardware thread.
    pub fn available() -> Concurrency {
        Concurrency::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// True when no worker threads would be spawned.
    pub fn is_serial(self) -> bool {
        self.threads <= 1
    }
}

impl Default for Concurrency {
    fn default() -> Concurrency {
        Concurrency::serial()
    }
}

/// Order-preserving parallel map: `f(i, &items[i])` for every item, results
/// returned in item order.
///
/// With `conc.is_serial()` (or fewer than two items) this is a plain serial
/// loop on the calling thread. Otherwise items are claimed dynamically by
/// up to `conc.threads` scoped workers and the `(index, result)` pairs are
/// merged back into index order, so the output is identical to the serial
/// loop's no matter how the scheduler interleaves workers.
///
/// # Panics
/// Propagates a panic from `f` (the scope join reports it).
// audit:allow(panic) items[i] is guarded by the i >= len break; the scope join only re-raises a worker's own panic
pub fn par_map<T, R, F>(conc: Concurrency, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if conc.is_serial() || items.len() <= 1 {
        record_section("serial", items.len());
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    record_section("threaded", items.len());
    let workers = conc.threads.min(items.len());
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // audit:allow(relaxed) work-stealing counter: fetch_add is atomic per claim; no other memory is published through it
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected.lock().append(&mut local);
            });
        }
    })
    .expect("parallel worker panicked");
    let mut pairs = collected.into_inner();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Like [`par_map`], but amortizes scheduling over contiguous chunks of at
/// least `min_chunk` items — for fine-grained work (per-node hashing,
/// per-feature cluster assignment) where claiming items one at a time would
/// cost more than the work itself.
///
/// Output order is item order, exactly as [`par_map`].
// audit:allow(panic) chunk ranges are clamped to items.len(), so every index is in bounds
pub fn par_map_chunked<T, R, F>(conc: Concurrency, items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let min_chunk = min_chunk.max(1);
    if conc.is_serial() || items.len() <= min_chunk {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // ~4 chunks per worker keeps dynamic scheduling effective on skewed
    // costs while bounding per-chunk overhead.
    let target_chunks = conc.threads * 4;
    let chunk = (items.len().div_ceil(target_chunks)).max(min_chunk);
    let ranges: Vec<std::ops::Range<usize>> = (0..items.len())
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(items.len()))
        .collect();
    let per_chunk = par_map(conc, &ranges, |_, range| {
        range.clone().map(|i| f(i, &items[i])).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for mut chunk_out in per_chunk {
        out.append(&mut chunk_out);
    }
    out
}

/// Order-preserving fallible parallel map: stops delivering results at the
/// first error **in item order** (later items may still have been computed
/// and are discarded), mirroring a serial `collect::<Result<Vec<_>, _>>()`.
pub fn try_par_map<T, R, E, F>(conc: Concurrency, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    if conc.is_serial() || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    par_map(conc, items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serial_knob_spawns_no_threads_and_matches_plain_map() {
        let items: Vec<u64> = (0..100).collect();
        let tid = std::thread::current().id();
        let out = par_map(Concurrency::serial(), &items, |i, &x| {
            assert_eq!(std::thread::current().id(), tid, "serial must not spawn");
            x * 2 + i as u64
        });
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn threads_clamp_to_at_least_one() {
        assert_eq!(Concurrency::new(0).threads, 1);
        assert!(Concurrency::new(0).is_serial());
        assert!(Concurrency::default().is_serial());
        assert!(Concurrency::available().threads >= 1);
    }

    #[test]
    fn empty_and_singleton_inputs_work_at_any_thread_count() {
        for threads in [1usize, 2, 8] {
            let conc = Concurrency::new(threads);
            let empty: Vec<u32> = Vec::new();
            assert_eq!(par_map(conc, &empty, |_, &x| x), Vec::<u32>::new());
            assert_eq!(par_map(conc, &[7u32], |i, &x| x + i as u32), vec![7]);
            assert_eq!(
                par_map_chunked(conc, &empty, 4, |_, &x| x),
                Vec::<u32>::new()
            );
        }
    }

    #[test]
    fn skewed_work_still_merges_in_index_order() {
        // Early items sleep longest, so workers finish out of order.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(Concurrency::new(8), &items, |i, &x| {
            std::thread::sleep(std::time::Duration::from_micros(
                (items.len() - i) as u64 * 50,
            ));
            x * x
        });
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn try_par_map_reports_the_first_error_in_item_order() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1usize, 4] {
            let out: Result<Vec<u32>, u32> =
                try_par_map(Concurrency::new(threads), &items, |_, &x| {
                    if x % 20 == 13 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                });
            assert_eq!(out, Err(13), "threads={threads}");
        }
    }

    proptest! {
        #[test]
        fn par_map_equals_serial_map(
            items in proptest::collection::vec(any::<u32>(), 0..200),
            threads in 1usize..9,
            min_chunk in 1usize..16,
        ) {
            let f = |i: usize, x: &u32| (*x as u64).wrapping_mul(31).wrapping_add(i as u64);
            let serial: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
            let conc = Concurrency::new(threads);
            prop_assert_eq!(&par_map(conc, &items, f), &serial);
            prop_assert_eq!(&par_map_chunked(conc, &items, min_chunk, f), &serial);
        }
    }
}
