//! Property-based tests for the MRKD-tree: for arbitrary cluster sets and
//! perturbed queries, the SP's search verifies and yields the exact nearest
//! clusters, in both candidate modes.

use imageproof_akm::rkd::{dist_sq, RkdForest};
use imageproof_crypto::Digest;
use imageproof_mrkd::{mrkd_search, verify_bovw, CandidateMode, MrkdForest};
use proptest::prelude::*;

const DIM: usize = 32;

fn centers_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, DIM..=DIM), 2..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn search_verifies_and_is_exact(
        centers in centers_strategy(),
        picks in proptest::collection::vec((any::<prop::sample::Index>(), -0.05f32..0.05), 1..6),
        mode_compressed in any::<bool>(),
    ) {
        let mode = if mode_compressed {
            CandidateMode::Compressed
        } else {
            CandidateMode::Full
        };
        let inv: Vec<Digest> = (0..centers.len() as u32)
            .map(|c| Digest::of(format!("inv{c}").as_bytes()))
            .collect();
        let forest = RkdForest::build(&centers, 3, 2, 99);
        let mrkd = MrkdForest::build(&forest, &centers, &inv, mode);

        // Queries are perturbations of existing centers.
        let queries: Vec<Vec<f32>> = picks
            .iter()
            .map(|(idx, eps)| {
                let base = &centers[idx.index(centers.len())];
                base.iter().map(|&v| (v + eps).clamp(0.0, 1.0)).collect()
            })
            .collect();
        let thresholds: Vec<f32> = queries
            .iter()
            .map(|q| {
                centers
                    .iter()
                    .map(|c| dist_sq(q, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();

        let out = mrkd_search(&mrkd, &queries, &thresholds);
        let verified = verify_bovw(&out.vo, &queries, mode).expect("honest VO verifies");
        prop_assert_eq!(verified.combined_root, mrkd.combined_root_digest());

        for (qi, q) in queries.iter().enumerate() {
            let brute = (0..centers.len() as u32)
                .min_by(|&a, &b| {
                    dist_sq(q, &centers[a as usize])
                        .total_cmp(&dist_sq(q, &centers[b as usize]))
                        .then(a.cmp(&b))
                })
                .expect("non-empty");
            prop_assert_eq!(verified.assignments[qi], brute, "query {}", qi);
        }
    }

    /// The VO wire encoding round-trips for arbitrary searches.
    #[test]
    fn vo_wire_roundtrip(centers in centers_strategy(), n_queries in 1usize..5) {
        use imageproof_crypto::wire::{Decode, Encode};
        use imageproof_mrkd::BovwVo;

        let inv: Vec<Digest> = (0..centers.len() as u32)
            .map(|c| Digest::of(format!("inv{c}").as_bytes()))
            .collect();
        let forest = RkdForest::build(&centers, 2, 2, 7);
        let mrkd = MrkdForest::build(&forest, &centers, &inv, CandidateMode::Compressed);
        let queries: Vec<Vec<f32>> = (0..n_queries)
            .map(|i| centers[i % centers.len()].clone())
            .collect();
        let thresholds: Vec<f32> = queries
            .iter()
            .map(|q| {
                centers
                    .iter()
                    .map(|c| dist_sq(q, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        let out = mrkd_search(&mrkd, &queries, &thresholds);
        let decoded = BovwVo::from_wire(&out.vo.to_wire()).expect("round trip");
        prop_assert_eq!(decoded, out.vo);
    }
}
