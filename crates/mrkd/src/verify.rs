//! Client-side verification of authenticated BoVW encoding (paper §IV-A2).
//!
//! Given the query feature vectors and the VO forest, the client:
//!
//! 1. **Reconstructs** every tree's root digest from the VO (rejecting
//!    malformed disclosures), collecting all fully-revealed centroids and
//!    the per-cluster inverted-list digests;
//! 2. Derives each query's **verified threshold** `t'_q` — the distance to
//!    the nearest fully-revealed centroid — and its winner cluster;
//! 3. **Re-walks** each VO with the shared traversal engine to check
//!    completeness: no pruned subtree is reachable within `t'_q`, and every
//!    partially-disclosed cluster proves it is at least `t'_q` away.
//!
//! If all checks pass and the combined root digest matches the owner's
//! signature (checked by the caller), the winners are exactly the clusters
//! the honest assignment rule produces, so the client can rebuild `B_Q`
//! itself.

use crate::search::partial_sum_revealed;
use crate::traverse::{traverse, ActiveQuery, TraversalVisitor, TreeSource, ViewNode};
use crate::tree::{
    block_bytes, block_range, combined_root_digest, dimension_tree, internal_digest, leaf_digest,
    leaf_entry_digest_compressed, leaf_entry_digest_full, n_blocks, CandidateMode,
};
use crate::vo::{BovwVo, Reveal, VoLeafEntry, VoNode};
use imageproof_akm::rkd::dist_sq;
use imageproof_crypto::merkle::hash_leaf;
use imageproof_crypto::Digest;
use std::collections::BTreeMap;

/// Why a VO was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Structurally invalid VO.
    Malformed(&'static str),
    /// The SP pruned a subtree that some query can still reach — a
    /// completeness violation.
    PrunedSubtreeReachable,
    /// A partial disclosure does not prove the cluster is at least as far as
    /// the verified winner.
    PartialTooClose { cluster: u32, query: u32 },
    /// A dimension-block subset proof failed.
    BadSubsetProof { cluster: u32 },
    /// The reveal kinds do not match the scheme's candidate mode.
    WrongMode,
    /// No centroid was fully revealed, so no winner can be established.
    NoCandidate,
    /// The same cluster appeared with two different inverted-list digests.
    InconsistentInvDigest { cluster: u32 },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Malformed(m) => write!(f, "malformed VO: {m}"),
            VerifyError::PrunedSubtreeReachable => {
                write!(
                    f,
                    "a pruned subtree is reachable within a verified threshold"
                )
            }
            VerifyError::PartialTooClose { cluster, query } => write!(
                f,
                "partial disclosure of cluster {cluster} fails to clear query {query}'s threshold"
            ),
            VerifyError::BadSubsetProof { cluster } => {
                write!(f, "dimension subset proof failed for cluster {cluster}")
            }
            VerifyError::WrongMode => write!(f, "reveal kind does not match candidate mode"),
            VerifyError::NoCandidate => write!(f, "no fully revealed centroid in VO"),
            VerifyError::InconsistentInvDigest { cluster } => {
                write!(f, "conflicting inverted-list digests for cluster {cluster}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The verified outcome of BoVW-encoding authentication.
#[derive(Debug, Clone)]
pub struct VerifiedBovw {
    /// `h(root_1 | … | root_{n_t})`, to be checked against the owner's
    /// signature.
    pub combined_root: Digest,
    /// Winner cluster per query — the verified BoVW assignments.
    pub assignments: Vec<u32>,
    /// Verified squared thresholds `t'_q` (distance to each winner).
    pub thresholds_sq: Vec<f32>,
    /// Authenticated `h_{Γ_c}` for every cluster disclosed in a leaf.
    pub inv_digests: BTreeMap<u32, Digest>,
}

/// Verifies a shared-traversal BoVW VO (the ImageProof / Optimized schemes).
pub fn verify_bovw(
    vo: &BovwVo,
    queries: &[Vec<f32>],
    mode: CandidateMode,
) -> Result<VerifiedBovw, VerifyError> {
    if queries.is_empty() {
        return Err(VerifyError::Malformed("no query vectors"));
    }
    let dim = queries.first().map(|q| q.len()).unwrap_or(0);
    if dim == 0 || queries.iter().any(|q| q.len() != dim) {
        return Err(VerifyError::Malformed("inconsistent query dimensionality"));
    }
    if vo.trees.is_empty() {
        return Err(VerifyError::Malformed("no VO trees"));
    }

    // Phase 1: digest reconstruction + reveal collection.
    let mut collector = Collector {
        dim,
        mode,
        reveals: BTreeMap::new(),
        inv_digests: BTreeMap::new(),
    };
    let mut roots = Vec::with_capacity(vo.trees.len());
    for tree in &vo.trees {
        roots.push(collector.reconstruct(tree)?);
    }

    // Phase 2: verified thresholds and winners.
    if collector.reveals.is_empty() {
        return Err(VerifyError::NoCandidate);
    }
    let mut assignments = Vec::with_capacity(queries.len());
    let mut thresholds_sq = Vec::with_capacity(queries.len());
    for q in queries {
        let mut best = (f32::INFINITY, u32::MAX);
        for (&cluster, coords) in &collector.reveals {
            let d = dist_sq(q, coords);
            if d < best.0 || (d == best.0 && cluster < best.1) {
                best = (d, cluster);
            }
        }
        assignments.push(best.1);
        thresholds_sq.push(best.0);
    }

    // Phase 3: completeness checks via the shared traversal.
    for tree in &vo.trees {
        let source = VoSource::flatten(tree);
        let mut visitor = ClientVisitor {
            source: &source,
            queries,
            thresholds_sq: &thresholds_sq,
        };
        traverse(&source, queries, &thresholds_sq, &mut visitor)?;
    }

    Ok(VerifiedBovw {
        combined_root: combined_root_digest(&roots),
        assignments,
        thresholds_sq,
        inv_digests: collector.inv_digests,
    })
}

/// Verifies a Baseline (per-query) BoVW VO. All per-query VOs must
/// reconstruct the same combined root.
pub fn verify_bovw_baseline(
    vo: &crate::search::BaselineBovwVo,
    queries: &[Vec<f32>],
) -> Result<VerifiedBovw, VerifyError> {
    if vo.per_query.len() != queries.len() {
        return Err(VerifyError::Malformed("per-query VO count mismatch"));
    }
    let mut combined: Option<Digest> = None;
    let mut assignments = Vec::with_capacity(queries.len());
    let mut thresholds_sq = Vec::with_capacity(queries.len());
    let mut inv_digests = BTreeMap::new();
    for (q, tree_vo) in queries.iter().zip(&vo.per_query) {
        let v = verify_bovw(tree_vo, std::slice::from_ref(q), CandidateMode::Full)?;
        match combined {
            None => combined = Some(v.combined_root),
            Some(c) if c == v.combined_root => {}
            Some(_) => return Err(VerifyError::Malformed("per-query roots disagree")),
        }
        let (a, t) = match (v.assignments.first(), v.thresholds_sq.first()) {
            (Some(&a), Some(&t)) => (a, t),
            _ => return Err(VerifyError::Malformed("empty per-query verification")),
        };
        assignments.push(a);
        thresholds_sq.push(t);
        for (cluster, d) in v.inv_digests {
            if *inv_digests.entry(cluster).or_insert(d) != d {
                return Err(VerifyError::InconsistentInvDigest { cluster });
            }
        }
    }
    Ok(VerifiedBovw {
        combined_root: combined.ok_or(VerifyError::Malformed("no queries"))?,
        assignments,
        thresholds_sq,
        inv_digests,
    })
}

/// Reconstructs the digest of any VO subtree without running completeness
/// checks. Exposed for diagnostics and adversarial tests.
pub fn vo_subtree_digest(
    node: &VoNode,
    mode: CandidateMode,
    dim: usize,
) -> Result<Digest, VerifyError> {
    let mut collector = Collector {
        dim,
        mode,
        reveals: BTreeMap::new(),
        inv_digests: BTreeMap::new(),
    };
    collector.reconstruct(node)
}

struct Collector {
    dim: usize,
    mode: CandidateMode,
    /// Fully revealed centroids, deduplicated by cluster.
    reveals: BTreeMap<u32, Vec<f32>>,
    inv_digests: BTreeMap<u32, Digest>,
}

impl Collector {
    fn reconstruct(&mut self, node: &VoNode) -> Result<Digest, VerifyError> {
        match node {
            VoNode::Pruned(d) => Ok(*d),
            VoNode::Internal {
                dim,
                value,
                left,
                right,
            } => {
                if *dim as usize >= self.dim {
                    return Err(VerifyError::Malformed("split dimension out of range"));
                }
                let l = self.reconstruct(left)?;
                let r = self.reconstruct(right)?;
                Ok(internal_digest(*dim, *value, &l, &r))
            }
            VoNode::Leaf { entries } => {
                if entries.is_empty() {
                    return Err(VerifyError::Malformed("empty leaf"));
                }
                let mut entry_digests = Vec::with_capacity(entries.len());
                for e in entries {
                    entry_digests.push(self.entry_digest(e)?);
                    match self.inv_digests.entry(e.cluster) {
                        std::collections::btree_map::Entry::Vacant(v) => {
                            v.insert(e.inv_digest);
                        }
                        std::collections::btree_map::Entry::Occupied(o) => {
                            if *o.get() != e.inv_digest {
                                return Err(VerifyError::InconsistentInvDigest {
                                    cluster: e.cluster,
                                });
                            }
                        }
                    }
                }
                Ok(leaf_digest(&entry_digests))
            }
        }
    }

    fn entry_digest(&mut self, e: &VoLeafEntry) -> Result<Digest, VerifyError> {
        match (&e.reveal, self.mode) {
            (Reveal::Full { coords }, CandidateMode::Full) => {
                if coords.len() != self.dim {
                    return Err(VerifyError::Malformed("centroid dimensionality"));
                }
                self.record_reveal(e.cluster, coords)?;
                Ok(leaf_entry_digest_full(e.cluster, coords, &e.inv_digest))
            }
            (Reveal::FullCompressed { coords }, CandidateMode::Compressed) => {
                if coords.len() != self.dim {
                    return Err(VerifyError::Malformed("centroid dimensionality"));
                }
                self.record_reveal(e.cluster, coords)?;
                let root = dimension_tree(coords).root();
                Ok(leaf_entry_digest_compressed(
                    e.cluster,
                    &root,
                    &e.inv_digest,
                ))
            }
            (
                Reveal::Partial {
                    dim_root,
                    blocks,
                    proof,
                },
                CandidateMode::Compressed,
            ) => {
                if blocks.is_empty() {
                    return Err(VerifyError::Malformed("empty partial disclosure"));
                }
                if !blocks
                    .iter()
                    .zip(blocks.iter().skip(1))
                    .all(|(a, b)| a.0 < b.0)
                {
                    return Err(VerifyError::Malformed("unsorted partial blocks"));
                }
                let total = n_blocks(self.dim);
                if proof.n_leaves as usize != total {
                    return Err(VerifyError::BadSubsetProof { cluster: e.cluster });
                }
                let mut revealed = Vec::with_capacity(blocks.len());
                for (b, coords) in blocks {
                    let range = block_range(*b as usize, self.dim);
                    if *b as usize >= total || coords.len() != range.len() {
                        return Err(VerifyError::Malformed("partial block geometry"));
                    }
                    revealed.push((*b as usize, hash_leaf(&block_bytes(coords))));
                }
                if !proof.verify_digests(&revealed, dim_root) {
                    return Err(VerifyError::BadSubsetProof { cluster: e.cluster });
                }
                Ok(leaf_entry_digest_compressed(
                    e.cluster,
                    dim_root,
                    &e.inv_digest,
                ))
            }
            _ => Err(VerifyError::WrongMode),
        }
    }

    fn record_reveal(&mut self, cluster: u32, coords: &[f32]) -> Result<(), VerifyError> {
        match self.reveals.entry(cluster) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(coords.to_vec());
            }
            std::collections::btree_map::Entry::Occupied(o) => {
                if o.get() != coords {
                    return Err(VerifyError::Malformed(
                        "same cluster revealed with different coordinates",
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Flattened VO tree adapting to [`TreeSource`].
struct VoSource<'a> {
    nodes: Vec<FlatNode<'a>>,
}

enum FlatNode<'a> {
    Pruned,
    Internal {
        dim: u32,
        value: f32,
        left: usize,
        right: usize,
    },
    Leaf(&'a [VoLeafEntry]),
}

impl<'a> VoSource<'a> {
    fn flatten(root: &'a VoNode) -> VoSource<'a> {
        let mut nodes = Vec::new();
        Self::push(root, &mut nodes);
        VoSource { nodes }
    }

    fn push(node: &'a VoNode, nodes: &mut Vec<FlatNode<'a>>) -> usize {
        let my = nodes.len();
        match node {
            VoNode::Pruned(_) => nodes.push(FlatNode::Pruned),
            VoNode::Leaf { entries } => nodes.push(FlatNode::Leaf(entries)),
            VoNode::Internal {
                dim,
                value,
                left,
                right,
            } => {
                nodes.push(FlatNode::Internal {
                    dim: *dim,
                    value: *value,
                    left: 0,
                    right: 0,
                });
                let l = Self::push(left, nodes);
                let r = Self::push(right, nodes);
                // `my` always holds the Internal pushed above; a mismatch
                // would leave the placeholder child indices pointing at the
                // root, which the traversal rejects as malformed.
                if let Some(FlatNode::Internal { left, right, .. }) = nodes.get_mut(my) {
                    *left = l;
                    *right = r;
                }
            }
        }
        my
    }

    fn entries(&self, node: usize) -> Result<&'a [VoLeafEntry], VerifyError> {
        match self.nodes.get(node) {
            Some(FlatNode::Leaf(entries)) => Ok(entries),
            _ => Err(VerifyError::Malformed(
                "traversal visited a non-leaf as a leaf",
            )),
        }
    }
}

impl TreeSource for VoSource<'_> {
    fn root(&self) -> usize {
        0
    }
    fn view(&self, node: usize) -> ViewNode {
        // Out-of-range indices read as Opaque, which the client traversal
        // rejects via `PrunedSubtreeReachable` if any query reaches them.
        match self.nodes.get(node) {
            None | Some(FlatNode::Pruned) => ViewNode::Opaque,
            Some(FlatNode::Leaf(_)) => ViewNode::Leaf,
            Some(FlatNode::Internal {
                dim,
                value,
                left,
                right,
            }) => ViewNode::Internal {
                dim: *dim,
                value: *value,
                left: *left,
                right: *right,
            },
        }
    }
}

struct ClientVisitor<'a> {
    source: &'a VoSource<'a>,
    queries: &'a [Vec<f32>],
    thresholds_sq: &'a [f32],
}

impl TraversalVisitor for ClientVisitor<'_> {
    type Out = ();
    type Err = VerifyError;

    fn inactive(&mut self, _node: usize) -> Result<(), VerifyError> {
        Ok(())
    }

    fn opaque(&mut self, _node: usize, _active: &[ActiveQuery]) -> Result<(), VerifyError> {
        Err(VerifyError::PrunedSubtreeReachable)
    }

    fn leaf(&mut self, node: usize, active: &[ActiveQuery]) -> Result<(), VerifyError> {
        for e in self.source.entries(node)? {
            if let Reveal::Partial { blocks, .. } = &e.reveal {
                for aq in active {
                    let q = aq.query as usize;
                    let (Some(query), Some(&threshold)) =
                        (self.queries.get(q), self.thresholds_sq.get(q))
                    else {
                        return Err(VerifyError::Malformed("active query index out of range"));
                    };
                    let partial = partial_sum_revealed(blocks, query);
                    if partial < threshold {
                        return Err(VerifyError::PartialTooClose {
                            cluster: e.cluster,
                            query: aq.query,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn internal(
        &mut self,
        _node: usize,
        _dim: u32,
        _value: f32,
        _active: &[ActiveQuery],
        _left: (),
        _right: (),
    ) -> Result<(), VerifyError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{mrkd_search, mrkd_search_baseline};
    use crate::tree::MrkdForest;
    use imageproof_akm::rkd::RkdForest;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 64;

    struct Fixture {
        centers: Vec<Vec<f32>>,
        mrkd: MrkdForest,
        queries: Vec<Vec<f32>>,
        thresholds: Vec<f32>,
    }

    fn fixture(mode: CandidateMode, n_queries: usize) -> Fixture {
        let mut rng = StdRng::seed_from_u64(71);
        let centers: Vec<Vec<f32>> = (0..60)
            .map(|_| (0..DIM).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let inv: Vec<Digest> = (0..60u32)
            .map(|c| Digest::of(format!("inv-{c}").as_bytes()))
            .collect();
        let forest = RkdForest::build(&centers, 3, 2, 72);
        let mrkd = MrkdForest::build(&forest, &centers, &inv, mode);
        let queries: Vec<Vec<f32>> = (0..n_queries)
            .map(|_| {
                let base = &centers[rng.gen_range(0..centers.len())];
                base.iter()
                    .map(|&v| v + rng.gen_range(-0.02f32..0.02))
                    .collect()
            })
            .collect();
        let thresholds: Vec<f32> = queries
            .iter()
            .map(|q| {
                centers
                    .iter()
                    .map(|c| dist_sq(q, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        Fixture {
            centers,
            mrkd,
            queries,
            thresholds,
        }
    }

    fn brute_nn(centers: &[Vec<f32>], q: &[f32]) -> u32 {
        (0..centers.len() as u32)
            .min_by(|&a, &b| {
                dist_sq(q, &centers[a as usize]).total_cmp(&dist_sq(q, &centers[b as usize]))
            })
            .expect("non-empty")
    }

    #[test]
    fn honest_full_mode_vo_verifies() {
        let f = fixture(CandidateMode::Full, 10);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        let v = verify_bovw(&out.vo, &f.queries, CandidateMode::Full).expect("honest VO");
        assert_eq!(v.combined_root, f.mrkd.combined_root_digest());
        for (qi, q) in f.queries.iter().enumerate() {
            assert_eq!(v.assignments[qi], brute_nn(&f.centers, q), "query {qi}");
        }
    }

    #[test]
    fn honest_compressed_mode_vo_verifies() {
        let f = fixture(CandidateMode::Compressed, 10);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        let v = verify_bovw(&out.vo, &f.queries, CandidateMode::Compressed).expect("honest VO");
        assert_eq!(v.combined_root, f.mrkd.combined_root_digest());
        for (qi, q) in f.queries.iter().enumerate() {
            assert_eq!(v.assignments[qi], brute_nn(&f.centers, q), "query {qi}");
        }
    }

    #[test]
    fn honest_baseline_vo_verifies() {
        let f = fixture(CandidateMode::Full, 6);
        let (vo, _, _) = mrkd_search_baseline(&f.mrkd, &f.queries, &f.thresholds);
        let v = verify_bovw_baseline(&vo, &f.queries).expect("honest baseline VO");
        assert_eq!(v.combined_root, f.mrkd.combined_root_digest());
        for (qi, q) in f.queries.iter().enumerate() {
            assert_eq!(v.assignments[qi], brute_nn(&f.centers, q));
        }
    }

    #[test]
    fn verified_inv_digests_match_the_forest() {
        let f = fixture(CandidateMode::Full, 8);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        let v = verify_bovw(&out.vo, &f.queries, CandidateMode::Full).expect("honest VO");
        for (&cluster, d) in &v.inv_digests {
            assert_eq!(*d, f.mrkd.inv_digest(cluster));
        }
        for a in &v.assignments {
            assert!(v.inv_digests.contains_key(a), "winner digest available");
        }
    }

    /// Rewrites every VO leaf entry for `cluster`, in all trees.
    fn tamper_entries(vo: &mut BovwVo, cluster: u32, f: &mut dyn FnMut(&mut VoLeafEntry)) -> usize {
        fn walk(node: &mut VoNode, cluster: u32, f: &mut dyn FnMut(&mut VoLeafEntry)) -> usize {
            match node {
                VoNode::Pruned(_) => 0,
                VoNode::Leaf { entries } => entries
                    .iter_mut()
                    .filter(|e| e.cluster == cluster)
                    .map(|e| {
                        f(e);
                        1
                    })
                    .sum(),
                VoNode::Internal { left, right, .. } => {
                    walk(left, cluster, f) + walk(right, cluster, f)
                }
            }
        }
        vo.trees.iter_mut().map(|t| walk(t, cluster, f)).sum()
    }

    #[test]
    fn tampered_centroid_changes_reconstructed_root() {
        let f = fixture(CandidateMode::Full, 5);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        let honest = verify_bovw(&out.vo, &f.queries, CandidateMode::Full).expect("honest");
        let winner = honest.assignments[0];

        let mut forged = out.vo.clone();
        let n = tamper_entries(&mut forged, winner, &mut |e| {
            if let Reveal::Full { coords } = &mut e.reveal {
                coords[3] += 0.25;
            }
        });
        assert!(n > 0, "winner must appear in the VO");
        // Either verification fails outright or the root no longer matches
        // the owner's signature target.
        if let Ok(v) = verify_bovw(&forged, &f.queries, CandidateMode::Full) {
            assert_ne!(v.combined_root, f.mrkd.combined_root_digest());
        }
    }

    #[test]
    fn hiding_the_winner_behind_a_pruned_stub_is_detected() {
        let f = fixture(CandidateMode::Full, 2);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        let honest = verify_bovw(&out.vo, &f.queries, CandidateMode::Full).expect("honest");
        let victim = honest.assignments[0];
        assert_ne!(
            victim, honest.assignments[1],
            "fixture needs distinct winners"
        );

        // Replace every leaf containing the victim cluster with a pruned
        // stub carrying the *correct* digest (the strongest forgery the SP
        // can attempt without breaking the hash function).
        fn prune_leaves_with(node: &mut VoNode, cluster: u32, dim: usize) {
            match node {
                VoNode::Pruned(_) => {}
                VoNode::Leaf { entries } => {
                    if entries.iter().any(|e| e.cluster == cluster) {
                        let digest =
                            vo_subtree_digest(node, CandidateMode::Full, dim).expect("digest");
                        *node = VoNode::Pruned(digest);
                    }
                }
                VoNode::Internal { left, right, .. } => {
                    prune_leaves_with(left, cluster, dim);
                    prune_leaves_with(right, cluster, dim);
                }
            }
        }
        let mut forged = out.vo.clone();
        for tree in &mut forged.trees {
            prune_leaves_with(tree, victim, DIM);
        }

        let result = verify_bovw(&forged, &f.queries, CandidateMode::Full);
        match result {
            Err(VerifyError::PrunedSubtreeReachable) | Err(VerifyError::NoCandidate) => {}
            other => panic!("forgery accepted or wrong error: {other:?}"),
        }
    }

    #[test]
    fn downgrading_the_winner_to_a_partial_reveal_is_detected() {
        let f = fixture(CandidateMode::Compressed, 2);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        let honest = verify_bovw(&out.vo, &f.queries, CandidateMode::Compressed).expect("honest");
        let victim = honest.assignments[0];
        assert_ne!(
            victim, honest.assignments[1],
            "fixture needs distinct winners"
        );

        // Forge: disclose the victim only partially (all blocks — the most
        // honest-looking partial reveal possible).
        let center = f.centers[victim as usize].clone();
        let dim_tree = f.mrkd.dim_tree(victim).expect("compressed").clone();
        let total = crate::tree::n_blocks(DIM);
        let all: Vec<usize> = (0..total).collect();
        let proof = dim_tree.prove_subset(&all);
        let blocks: Vec<(u32, Vec<f32>)> = (0..total)
            .map(|b| (b as u32, center[crate::tree::block_range(b, DIM)].to_vec()))
            .collect();
        let mut forged = out.vo.clone();
        let n = tamper_entries(&mut forged, victim, &mut |e| {
            e.reveal = Reveal::Partial {
                dim_root: dim_tree.root(),
                blocks: blocks.clone(),
                proof: proof.clone(),
            };
        });
        assert!(n > 0);

        // Hiding the winner inflates the verified threshold t', which is
        // then caught either directly (the partial disclosure is too close)
        // or indirectly (a pruned subtree becomes reachable under the
        // inflated t').
        match verify_bovw(&forged, &f.queries, CandidateMode::Compressed) {
            Err(VerifyError::PartialTooClose { .. })
            | Err(VerifyError::NoCandidate)
            | Err(VerifyError::PrunedSubtreeReachable) => {}
            other => panic!("forgery accepted or wrong error: {other:?}"),
        }
    }

    #[test]
    fn forged_partial_block_values_fail_the_subset_proof() {
        let f = fixture(CandidateMode::Compressed, 4);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        // Find any partial entry and nudge a revealed coordinate.
        let mut forged = out.vo.clone();
        let mut tampered = false;
        fn walk(node: &mut VoNode, tampered: &mut bool) {
            match node {
                VoNode::Pruned(_) => {}
                VoNode::Leaf { entries } => {
                    for e in entries {
                        if *tampered {
                            return;
                        }
                        if let Reveal::Partial { blocks, .. } = &mut e.reveal {
                            blocks[0].1[0] += 1.0;
                            *tampered = true;
                        }
                    }
                }
                VoNode::Internal { left, right, .. } => {
                    walk(left, tampered);
                    walk(right, tampered);
                }
            }
        }
        for t in &mut forged.trees {
            walk(t, &mut tampered);
        }
        assert!(
            tampered,
            "fixture should produce at least one partial reveal"
        );
        assert!(matches!(
            verify_bovw(&forged, &f.queries, CandidateMode::Compressed),
            Err(VerifyError::BadSubsetProof { .. })
        ));
    }

    #[test]
    fn forged_inv_digest_changes_root() {
        let f = fixture(CandidateMode::Full, 4);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        let honest = verify_bovw(&out.vo, &f.queries, CandidateMode::Full).expect("honest");
        let winner = honest.assignments[0];
        let mut forged = out.vo.clone();
        tamper_entries(&mut forged, winner, &mut |e| {
            e.inv_digest = Digest::of(b"forged inverted list");
        });
        if let Ok(v) = verify_bovw(&forged, &f.queries, CandidateMode::Full) {
            assert_ne!(v.combined_root, f.mrkd.combined_root_digest());
        }
    }

    #[test]
    fn wrong_mode_is_rejected() {
        let f = fixture(CandidateMode::Full, 3);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        assert!(matches!(
            verify_bovw(&out.vo, &f.queries, CandidateMode::Compressed),
            Err(VerifyError::WrongMode)
        ));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let f = fixture(CandidateMode::Full, 3);
        let out = mrkd_search(&f.mrkd, &f.queries, &f.thresholds);
        assert!(matches!(
            verify_bovw(&out.vo, &[], CandidateMode::Full),
            Err(VerifyError::Malformed(_))
        ));
        let empty = BovwVo { trees: vec![] };
        assert!(matches!(
            verify_bovw(&empty, &f.queries, CandidateMode::Full),
            Err(VerifyError::Malformed(_))
        ));
    }

    #[test]
    fn baseline_rejects_query_count_mismatch() {
        let f = fixture(CandidateMode::Full, 3);
        let (vo, _, _) = mrkd_search_baseline(&f.mrkd, &f.queries, &f.thresholds);
        assert!(matches!(
            verify_bovw_baseline(&vo, &f.queries[..2]),
            Err(VerifyError::Malformed(_))
        ));
    }
}
