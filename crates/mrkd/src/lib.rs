//! # imageproof-mrkd
//!
//! The Merkle randomized k-d tree (MRKD-tree), the first of ImageProof's two
//! authenticated data structures (paper §IV-A), which authenticates the BoVW
//! encoding step of SIFT-based image retrieval.
//!
//! * [`tree`] — the ADS itself: digests over randomized k-d trees (Defs. 2–3)
//!   and the per-cluster dimension-block commitments of the §VI-A
//!   optimization.
//! * [`traverse`] — the multi-query traversal engine shared *verbatim* by SP
//!   search and client verification, so pruning bounds are bit-identical on
//!   both sides.
//! * [`search`] — SP-side `MRKDSearch` (Alg. 1) with node sharing, the
//!   Baseline per-query variant, and partial-disclosure selection.
//! * [`vo`] — verification-object types and their canonical wire encoding.
//! * [`verify`] — client-side verification: digest reconstruction, verified
//!   thresholds, and completeness checks.

pub mod search;
pub mod traverse;
pub mod tree;
pub mod verify;
pub mod vo;

pub use search::{
    mrkd_search, mrkd_search_baseline, mrkd_search_baseline_with, mrkd_search_with, BaselineBovwVo,
    SearchOutput, SearchStats,
};
pub use tree::{CandidateMode, MrkdForest, MrkdTree};
pub use verify::{verify_bovw, verify_bovw_baseline, VerifiedBovw, VerifyError};
pub use vo::{BovwVo, DigestCursor, Reveal, VoLeafEntry, VoNode};
