//! The Merkle randomized k-d tree (MRKD-tree) and forest (paper §IV-A).
//!
//! An MRKD-tree is a randomized k-d tree whose nodes carry digests:
//!
//! * internal nodes: `h_N = h(l_N | h_left | h_right)` (Def. 2), where the
//!   hyperplane `l_N` is the split dimension and value;
//! * leaf nodes: `h_N = h(c_1 | h_{Γ_{c_1}} | … | c_τ | h_{Γ_{c_τ}})`
//!   (Def. 3) — each cluster is bound together with the digest of its Merkle
//!   inverted list, which is what connects the two ADSs of ImageProof.
//!
//! A cluster is bound either by its full centroid coordinates (base scheme)
//! or by the root of a Merkle tree over its coordinates (the §VI-A
//! candidate-compression optimization) — see [`CandidateMode`].

use imageproof_akm::rkd::{Node, RkdForest, RkdTree};
use imageproof_crypto::{Digest, MerkleTree};
use imageproof_parallel::{par_map, par_map_chunked, Concurrency};

/// How cluster centroids are committed inside leaf digests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CandidateMode {
    /// Leaf digests bind full centroid coordinates; the VO reveals them all.
    Full,
    /// Leaf digests bind a per-cluster dimension Merkle root; the VO reveals
    /// full coordinates only for nearest-neighbour candidates and partial
    /// coordinates (with subset proofs) otherwise (§VI-A).
    Compressed,
}

/// Hashes one leaf-entry binding. Shared by owner (build), SP (pruned-leaf
/// digests) and client (reconstruction) so the binding can never drift.
pub fn leaf_entry_digest_full(cluster: u32, coords: &[f32], inv_digest: &Digest) -> Digest {
    Digest::builder()
        .u32(cluster)
        .f32_slice(coords)
        .digest(inv_digest)
        .finish()
}

/// Compressed-mode variant: binds the dimension-tree root instead of raw
/// coordinates.
pub fn leaf_entry_digest_compressed(
    cluster: u32,
    dim_root: &Digest,
    inv_digest: &Digest,
) -> Digest {
    Digest::builder()
        .u32(cluster)
        .digest(dim_root)
        .digest(inv_digest)
        .finish()
}

/// Hashes a whole leaf from its entry digests (Def. 3).
pub fn leaf_digest(entry_digests: &[Digest]) -> Digest {
    let mut b = Digest::builder().u64(entry_digests.len() as u64);
    for d in entry_digests {
        b = b.digest(d);
    }
    b.finish()
}

/// Hashes an internal node (Def. 2).
pub fn internal_digest(dim: u32, value: f32, left: &Digest, right: &Digest) -> Digest {
    Digest::builder()
        .u32(dim)
        .f32(value)
        .digest(left)
        .digest(right)
        .finish()
}

/// Dimensions per Merkle leaf of the per-cluster commitment.
///
/// Committing *blocks* of dimensions rather than single dimensions keeps the
/// §VI-A optimization profitable: a revealed dimension costs 4 bytes but a
/// Merkle sibling costs 32, so per-dimension leaves would make partial
/// disclosure larger than the full centroid. Sixteen-dimension blocks give
/// 8 leaves for SIFT (128-d) and 4 for SURF (64-d).
pub const BLOCK_DIMS: usize = 16;

/// Number of commitment blocks for a `dim`-dimensional centroid.
pub fn n_blocks(dim: usize) -> usize {
    dim.div_ceil(BLOCK_DIMS)
}

/// The dimension range covered by `block`.
pub fn block_range(block: usize, dim: usize) -> std::ops::Range<usize> {
    let start = block * BLOCK_DIMS;
    start..((block + 1) * BLOCK_DIMS).min(dim)
}

/// Canonical leaf bytes of one block: the block's coordinates as
/// little-endian IEEE-754 bit patterns.
pub fn block_bytes(block_coords: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(block_coords.len() * 4);
    for c in block_coords {
        out.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    out
}

/// Builds the Merkle tree over one centroid's dimension blocks, used in
/// [`CandidateMode::Compressed`].
// audit:allow(panic) blocks below n_blocks(len) slice within coords; block_range clamps the end
pub fn dimension_tree(coords: &[f32]) -> MerkleTree {
    let leaves: Vec<Vec<u8>> = (0..n_blocks(coords.len()))
        .map(|b| block_bytes(&coords[block_range(b, coords.len())]))
        .collect();
    MerkleTree::from_leaf_data(&leaves)
}

/// One MRKD-tree: the underlying randomized k-d tree plus per-node digests.
#[derive(Clone, Debug)]
pub struct MrkdTree {
    rkd: RkdTree,
    digests: Vec<Digest>,
}

impl MrkdTree {
    /// Wraps an existing randomized k-d tree with digests.
    pub fn build(
        rkd: RkdTree,
        centers: &[Vec<f32>],
        inv_digests: &[Digest],
        mode: CandidateMode,
        dim_roots: Option<&[Digest]>,
    ) -> MrkdTree {
        let mut digests = vec![Digest::ZERO; rkd.nodes().len()];
        // Children always precede nothing in particular (parents precede
        // children in the arena), so compute bottom-up by index descending.
        for idx in (0..rkd.nodes().len()).rev() {
            digests[idx] = match &rkd.nodes()[idx] {
                Node::Leaf { clusters } => {
                    let entry_digests: Vec<Digest> = clusters
                        .iter()
                        .map(|&c| match mode {
                            CandidateMode::Full => leaf_entry_digest_full(
                                c,
                                &centers[c as usize],
                                &inv_digests[c as usize],
                            ),
                            CandidateMode::Compressed => leaf_entry_digest_compressed(
                                c,
                                &dim_roots.expect("compressed mode needs dim roots")[c as usize],
                                &inv_digests[c as usize],
                            ),
                        })
                        .collect();
                    leaf_digest(&entry_digests)
                }
                Node::Internal {
                    dim,
                    value,
                    left,
                    right,
                } => internal_digest(
                    *dim,
                    *value,
                    &digests[*left as usize],
                    &digests[*right as usize],
                ),
            };
        }
        MrkdTree { rkd, digests }
    }

    /// The underlying randomized k-d tree.
    pub fn rkd(&self) -> &RkdTree {
        &self.rkd
    }

    /// Number of per-node digests this tree stores (footprint accounting).
    pub fn n_digests(&self) -> usize {
        self.digests.len()
    }

    /// Recomputes the digests after some clusters' inverted-list digests
    /// changed (owner-side incremental update). One O(n) scan; hashes are
    /// recomputed only for affected leaves and their ancestors, so an
    /// update touching `k` clusters costs `O(k log n)` hash invocations.
    pub fn refresh(
        &mut self,
        centers: &[Vec<f32>],
        inv_digests: &[Digest],
        mode: CandidateMode,
        dim_roots: Option<&[Digest]>,
        changed: &std::collections::BTreeSet<u32>,
    ) {
        let n = self.rkd.nodes().len();
        let mut dirty = vec![false; n];
        // Parents precede children in the arena, so a reverse scan sees
        // children first.
        for idx in (0..n).rev() {
            match &self.rkd.nodes()[idx] {
                Node::Leaf { clusters } => {
                    if clusters.iter().any(|c| changed.contains(c)) {
                        let entry_digests: Vec<Digest> = clusters
                            .iter()
                            .map(|&c| match mode {
                                CandidateMode::Full => leaf_entry_digest_full(
                                    c,
                                    &centers[c as usize],
                                    &inv_digests[c as usize],
                                ),
                                CandidateMode::Compressed => leaf_entry_digest_compressed(
                                    c,
                                    &dim_roots.expect("compressed mode needs dim roots")
                                        [c as usize],
                                    &inv_digests[c as usize],
                                ),
                            })
                            .collect();
                        self.digests[idx] = leaf_digest(&entry_digests);
                        dirty[idx] = true;
                    }
                }
                Node::Internal {
                    dim,
                    value,
                    left,
                    right,
                } => {
                    if dirty[*left as usize] || dirty[*right as usize] {
                        self.digests[idx] = internal_digest(
                            *dim,
                            *value,
                            &self.digests[*left as usize],
                            &self.digests[*right as usize],
                        );
                        dirty[idx] = true;
                    }
                }
            }
        }
    }

    /// Digest of node `idx`.
    // audit:allow(panic) SP-side accessor: node ids come from the SP's own arena
    pub fn node_digest(&self, idx: u32) -> Digest {
        self.digests[idx as usize]
    }

    /// Root digest of this tree.
    pub fn root_digest(&self) -> Digest {
        self.digests[self.rkd.root() as usize]
    }
}

/// The MRKD forest: every tree of the AKM forest, Merkle-ized, plus the
/// shared per-cluster commitments.
#[derive(Clone, Debug)]
pub struct MrkdForest {
    mode: CandidateMode,
    trees: Vec<MrkdTree>,
    /// Cluster centroids (shared with the codebook).
    centers: Vec<Vec<f32>>,
    /// Per-cluster inverted-list digests `h_{Γ_c}`.
    inv_digests: Vec<Digest>,
    /// Per-cluster dimension Merkle trees (compressed mode only).
    dim_trees: Option<Vec<MerkleTree>>,
}

impl MrkdForest {
    /// Builds the authenticated forest over an AKM forest.
    ///
    /// `inv_digests[c]` must be the digest of cluster `c`'s Merkle inverted
    /// list (Def. 5), which Def. 3 embeds into leaf digests.
    pub fn build(
        forest: &RkdForest,
        centers: &[Vec<f32>],
        inv_digests: &[Digest],
        mode: CandidateMode,
    ) -> MrkdForest {
        Self::build_with(forest, centers, inv_digests, mode, Concurrency::serial())
    }

    /// [`MrkdForest::build`] with the per-cluster dimension trees and the
    /// per-tree digest builds fanned out across workers.
    ///
    /// Each cluster's dimension tree and each tree's digest array is a pure
    /// function of its inputs; outputs are merged in cluster/tree index
    /// order, so the forest (and the signed combined root) is identical for
    /// every thread count.
    pub fn build_with(
        forest: &RkdForest,
        centers: &[Vec<f32>],
        inv_digests: &[Digest],
        mode: CandidateMode,
        conc: Concurrency,
    ) -> MrkdForest {
        assert_eq!(
            centers.len(),
            inv_digests.len(),
            "one inverted-list digest per cluster"
        );
        let dim_trees = match mode {
            CandidateMode::Full => None,
            CandidateMode::Compressed => {
                Some(par_map_chunked(conc, centers, 64, |_, c| dimension_tree(c)))
            }
        };
        let dim_roots: Option<Vec<Digest>> = dim_trees
            .as_ref()
            .map(|ts| ts.iter().map(MerkleTree::root).collect());
        let trees = par_map(conc, forest.trees(), |_, t| {
            MrkdTree::build(t.clone(), centers, inv_digests, mode, dim_roots.as_deref())
        });
        MrkdForest {
            mode,
            trees,
            centers: centers.to_vec(),
            inv_digests: inv_digests.to_vec(),
            dim_trees,
        }
    }

    pub fn mode(&self) -> CandidateMode {
        self.mode
    }

    pub fn trees(&self) -> &[MrkdTree] {
        &self.trees
    }

    pub fn centers(&self) -> &[Vec<f32>] {
        &self.centers
    }

    // audit:allow(panic) SP-side accessor: cluster ids come from the SP's own forest
    pub fn inv_digest(&self, cluster: u32) -> Digest {
        self.inv_digests[cluster as usize]
    }

    /// Dimension Merkle tree of one cluster (compressed mode).
    // audit:allow(panic) SP-side accessor: cluster ids come from the SP's own forest
    pub fn dim_tree(&self, cluster: u32) -> Option<&MerkleTree> {
        self.dim_trees.as_ref().map(|t| &t[cluster as usize])
    }

    /// Total digests the forest stores across every authenticated level:
    /// per-node tree digests, the cluster list digests, and (compressed
    /// mode) every dimension Merkle tree node. Footprint accounting only.
    pub fn n_digests(&self) -> usize {
        let tree_digests: usize = self.trees.iter().map(MrkdTree::n_digests).sum();
        let dim_digests: usize = self
            .dim_trees
            .iter()
            .flatten()
            .map(MerkleTree::n_digests)
            .sum();
        tree_digests + self.inv_digests.len() + dim_digests
    }

    /// The combined digest the owner signs: `h(root_1 | … | root_{n_t})`
    /// (§V-A step iii).
    pub fn combined_root_digest(&self) -> Digest {
        combined_root_digest(
            &self
                .trees
                .iter()
                .map(MrkdTree::root_digest)
                .collect::<Vec<_>>(),
        )
    }

    /// Owner-side incremental update: installs new inverted-list digests
    /// for `updates` and refreshes every tree's digest paths. Used when
    /// images are inserted into or removed from the outsourced catalogue.
    pub fn apply_inv_digest_updates(&mut self, updates: &std::collections::BTreeMap<u32, Digest>) {
        if updates.is_empty() {
            return;
        }
        for (&cluster, &digest) in updates {
            self.inv_digests[cluster as usize] = digest;
        }
        let changed: std::collections::BTreeSet<u32> = updates.keys().copied().collect();
        let dim_roots: Option<Vec<Digest>> = self
            .dim_trees
            .as_ref()
            .map(|ts| ts.iter().map(MerkleTree::root).collect());
        for tree in &mut self.trees {
            tree.refresh(
                &self.centers,
                &self.inv_digests,
                self.mode,
                dim_roots.as_deref(),
                &changed,
            );
        }
    }
}

/// Combines per-tree root digests into the signed ImageProof digest; the
/// client calls this on *reconstructed* roots.
pub fn combined_root_digest(roots: &[Digest]) -> Digest {
    let mut b = Digest::builder().u64(roots.len() as u64);
    for r in roots {
        b = b.digest(r);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(mode: CandidateMode) -> (Vec<Vec<f32>>, Vec<Digest>, MrkdForest) {
        let mut rng = StdRng::seed_from_u64(7);
        let centers: Vec<Vec<f32>> = (0..50)
            .map(|_| (0..16).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let inv_digests: Vec<Digest> = (0..50u32)
            .map(|c| Digest::of(format!("list-{c}").as_bytes()))
            .collect();
        let forest = RkdForest::build(&centers, 3, 2, 11);
        let mrkd = MrkdForest::build(&forest, &centers, &inv_digests, mode);
        (centers, inv_digests, mrkd)
    }

    #[test]
    fn build_produces_digest_per_node() {
        let (_, _, mrkd) = setup(CandidateMode::Full);
        for tree in mrkd.trees() {
            assert_eq!(tree.digests.len(), tree.rkd().nodes().len());
            assert!(tree.digests.iter().all(|d| *d != Digest::ZERO));
        }
    }

    #[test]
    fn root_digest_changes_when_a_center_changes() {
        let (mut centers, inv_digests, mrkd) = setup(CandidateMode::Full);
        let forest = RkdForest::build(&centers, 3, 2, 11);
        centers[13][5] += 0.5;
        let tampered = MrkdForest::build(&forest, &centers, &inv_digests, CandidateMode::Full);
        assert_ne!(mrkd.combined_root_digest(), tampered.combined_root_digest());
    }

    #[test]
    fn root_digest_changes_when_an_inverted_list_digest_changes() {
        let (centers, mut inv_digests, mrkd) = setup(CandidateMode::Full);
        let forest = RkdForest::build(&centers, 3, 2, 11);
        inv_digests[20] = Digest::of(b"forged list");
        let tampered = MrkdForest::build(&forest, &centers, &inv_digests, CandidateMode::Full);
        assert_ne!(mrkd.combined_root_digest(), tampered.combined_root_digest());
    }

    #[test]
    fn modes_produce_distinct_commitments() {
        let (_, _, full) = setup(CandidateMode::Full);
        let (_, _, compressed) = setup(CandidateMode::Compressed);
        assert_ne!(
            full.combined_root_digest(),
            compressed.combined_root_digest()
        );
    }

    #[test]
    fn compressed_mode_has_dim_trees_matching_roots() {
        let (centers, _, mrkd) = setup(CandidateMode::Compressed);
        for c in 0..centers.len() as u32 {
            let t = mrkd.dim_tree(c).expect("compressed mode");
            assert_eq!(t.root(), dimension_tree(&centers[c as usize]).root());
            assert_eq!(t.len(), n_blocks(16));
        }
        let (_, _, full) = setup(CandidateMode::Full);
        assert!(full.dim_tree(0).is_none());
    }

    #[test]
    fn block_geometry_covers_all_dimensions_exactly_once() {
        for dim in [1usize, 15, 16, 17, 64, 100, 128] {
            let mut covered = vec![0u32; dim];
            for b in 0..n_blocks(dim) {
                for d in block_range(b, dim) {
                    covered[d] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "dim {dim}");
        }
    }

    #[test]
    fn leaf_digest_depends_on_entry_order_and_count() {
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        assert_ne!(leaf_digest(&[a, b]), leaf_digest(&[b, a]));
        assert_ne!(leaf_digest(&[a]), leaf_digest(&[a, a]));
    }

    #[test]
    fn incremental_refresh_matches_full_rebuild() {
        for mode in [CandidateMode::Full, CandidateMode::Compressed] {
            let (centers, mut inv_digests, mut mrkd) = setup(mode);
            // Change three clusters' list digests.
            let updates: std::collections::BTreeMap<u32, Digest> = [3u32, 17, 42]
                .into_iter()
                .map(|c| (c, Digest::of(format!("new-list-{c}").as_bytes())))
                .collect();
            for (&c, &d) in &updates {
                inv_digests[c as usize] = d;
            }
            mrkd.apply_inv_digest_updates(&updates);

            let forest = RkdForest::build(&centers, 3, 2, 11);
            let rebuilt = MrkdForest::build(&forest, &centers, &inv_digests, mode);
            assert_eq!(
                mrkd.combined_root_digest(),
                rebuilt.combined_root_digest(),
                "{mode:?}"
            );
            for (a, b) in mrkd.trees().iter().zip(rebuilt.trees()) {
                assert_eq!(a.root_digest(), b.root_digest(), "{mode:?}");
            }
        }
    }

    #[test]
    fn empty_refresh_is_a_no_op() {
        let (_, _, mut mrkd) = setup(CandidateMode::Full);
        let before = mrkd.combined_root_digest();
        mrkd.apply_inv_digest_updates(&std::collections::BTreeMap::new());
        assert_eq!(mrkd.combined_root_digest(), before);
    }

    #[test]
    fn combined_root_binds_count_and_order() {
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        assert_ne!(combined_root_digest(&[a, b]), combined_root_digest(&[b, a]));
        assert_ne!(combined_root_digest(&[a]), combined_root_digest(&[a, a]));
    }
}
