//! The shared multi-query traversal engine behind `MRKDSearch` (Alg. 1).
//!
//! Both sides of the protocol walk a k-d structure while maintaining, for
//! every query vector, an exact lower bound on the distance from the query to
//! the current node's cell:
//!
//! * the **SP** walks the real MRKD-tree to decide which subtrees to open
//!   and which to prune (emitting digests);
//! * the **client** walks the VO tree to check that every pruned subtree was
//!   legitimately prunable and every opened leaf is accounted for.
//!
//! Soundness requires both walks to compute *bit-identical* `f32` bounds, so
//! the bound arithmetic lives here, once. The incremental rule: descending
//! to the far child of a split on dimension `dim` with signed offset
//! `d = q[dim] - value` replaces that dimension's contribution with `d²`
//! (cells nest, so the new constraint dominates), giving the exact
//! point-to-cell squared distance.

/// One query that reaches the current node, with its cell-distance bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActiveQuery {
    /// Index into the query array.
    pub query: u32,
    /// Exact squared distance from the query to this node's cell.
    pub bound_sq: f32,
}

/// A node as seen by the engine.
#[derive(Clone, Copy, Debug)]
pub enum ViewNode {
    /// A disclosed split.
    Internal {
        dim: u32,
        value: f32,
        left: usize,
        right: usize,
    },
    /// A disclosed leaf.
    Leaf,
    /// An undisclosed subtree (only occurs in VO walks).
    Opaque,
}

/// The structure being walked (real tree or VO tree).
pub trait TreeSource {
    fn root(&self) -> usize;
    fn view(&self, node: usize) -> ViewNode;
}

/// Walk callbacks. Each node produces an `Out`, combined bottom-up.
pub trait TraversalVisitor {
    type Out;
    type Err;

    /// A node no query reaches (the engine does not descend into it).
    fn inactive(&mut self, node: usize) -> Result<Self::Out, Self::Err>;
    /// An opaque (pruned-in-VO) node that at least one query reaches.
    fn opaque(&mut self, node: usize, active: &[ActiveQuery]) -> Result<Self::Out, Self::Err>;
    /// A disclosed leaf reached by at least one query.
    fn leaf(&mut self, node: usize, active: &[ActiveQuery]) -> Result<Self::Out, Self::Err>;
    /// A disclosed internal node (children already processed).
    fn internal(
        &mut self,
        node: usize,
        dim: u32,
        value: f32,
        active: &[ActiveQuery],
        left: Self::Out,
        right: Self::Out,
    ) -> Result<Self::Out, Self::Err>;
}

/// Per-depth scratch buffers for the child partition built at each internal
/// node. The walk is depth-first, so exactly one invocation is live per
/// depth at any time: vectors are taken from the slot on entry and returned
/// (cleared, capacity retained) on exit, reducing allocation to O(depth)
/// per traversal instead of four `Vec`s per visited internal node.
#[derive(Default)]
struct FramePool {
    frames: Vec<Frame>,
}

#[derive(Default)]
struct Frame {
    left_active: Vec<ActiveQuery>,
    right_active: Vec<ActiveQuery>,
    left_crossers: Vec<(u32, f32)>,
    right_crossers: Vec<(u32, f32)>,
    saved: Vec<f32>,
}

impl FramePool {
    // audit:allow(panic) the pool is resized to depth + 1 immediately before the access
    fn take(&mut self, depth: usize) -> Frame {
        if self.frames.len() <= depth {
            self.frames.resize_with(depth + 1, Frame::default);
        }
        std::mem::take(&mut self.frames[depth])
    }

    // audit:allow(panic) put always follows take at the same depth, which sized the pool
    fn put(&mut self, depth: usize, mut frame: Frame) {
        frame.left_active.clear();
        frame.right_active.clear();
        frame.left_crossers.clear();
        frame.right_crossers.clear();
        frame.saved.clear();
        self.frames[depth] = frame;
    }
}

/// Runs the multi-query traversal.
///
/// `thresholds_sq[q]` is the squared radius within which query `q` must see
/// every cluster. Queries whose thresholds are negative never activate.
// audit:allow(panic) q ranges over 0..queries.len() and thresholds_sq has the same length (asserted on entry)
pub fn traverse<S: TreeSource, V: TraversalVisitor>(
    source: &S,
    queries: &[Vec<f32>],
    thresholds_sq: &[f32],
    visitor: &mut V,
) -> Result<V::Out, V::Err> {
    assert_eq!(queries.len(), thresholds_sq.len());
    let dim = queries.first().map_or(0, Vec::len);
    let mut diffs = vec![0.0f32; queries.len() * dim];
    let active: Vec<ActiveQuery> = (0..queries.len() as u32)
        .filter(|&q| thresholds_sq[q as usize] >= 0.0)
        .map(|query| ActiveQuery {
            query,
            bound_sq: 0.0,
        })
        .collect();
    let mut pool = FramePool::default();
    recurse(
        source,
        source.root(),
        &active,
        &mut diffs,
        dim,
        queries,
        thresholds_sq,
        visitor,
        &mut pool,
        0,
    )
}

#[allow(clippy::too_many_arguments)]
// audit:allow(panic) query indices come from 0..queries.len(); split dims are the SP tree's own, or VO dims already validated by digest reconstruction
fn recurse<S: TreeSource, V: TraversalVisitor>(
    source: &S,
    node: usize,
    active: &[ActiveQuery],
    diffs: &mut [f32],
    dim_count: usize,
    queries: &[Vec<f32>],
    thresholds_sq: &[f32],
    visitor: &mut V,
    pool: &mut FramePool,
    depth: usize,
) -> Result<V::Out, V::Err> {
    if active.is_empty() {
        return visitor.inactive(node);
    }
    match source.view(node) {
        ViewNode::Opaque => visitor.opaque(node, active),
        ViewNode::Leaf => visitor.leaf(node, active),
        ViewNode::Internal {
            dim,
            value,
            left,
            right,
        } => {
            let mut frame = pool.take(depth);
            let Frame {
                left_active,
                right_active,
                // Queries that enter a child across the split plane, with
                // the diff value to install during that child's recursion.
                left_crossers,
                right_crossers,
                saved,
            } = &mut frame;
            for aq in active {
                let q = aq.query as usize;
                let d = queries[q][dim as usize] - value;
                let far_bound = aq.bound_sq - diffs[q * dim_count + dim as usize] + d * d;
                if d <= 0.0 {
                    // Query on the left half-space.
                    left_active.push(*aq);
                    if far_bound <= thresholds_sq[q] {
                        right_active.push(ActiveQuery {
                            query: aq.query,
                            bound_sq: far_bound,
                        });
                        right_crossers.push((aq.query, d * d));
                    }
                } else {
                    right_active.push(*aq);
                    if far_bound <= thresholds_sq[q] {
                        left_active.push(ActiveQuery {
                            query: aq.query,
                            bound_sq: far_bound,
                        });
                        left_crossers.push((aq.query, d * d));
                    }
                }
            }

            let left_out = with_diffs(diffs, dim_count, dim, left_crossers, saved, |diffs| {
                recurse(
                    source,
                    left,
                    left_active,
                    diffs,
                    dim_count,
                    queries,
                    thresholds_sq,
                    visitor,
                    pool,
                    depth + 1,
                )
            })?;
            let right_out = with_diffs(diffs, dim_count, dim, right_crossers, saved, |diffs| {
                recurse(
                    source,
                    right,
                    right_active,
                    diffs,
                    dim_count,
                    queries,
                    thresholds_sq,
                    visitor,
                    pool,
                    depth + 1,
                )
            })?;
            let out = visitor.internal(node, dim, value, active, left_out, right_out);
            pool.put(depth, frame);
            out
        }
    }
}

/// Temporarily installs crossing-diff values, restoring them afterwards.
/// `saved` is caller-provided scratch (cleared here before use).
// audit:allow(panic) crossers carry q and dim that recurse already used to index the same buffers
fn with_diffs<R>(
    diffs: &mut [f32],
    dim_count: usize,
    dim: u32,
    crossers: &[(u32, f32)],
    saved: &mut Vec<f32>,
    f: impl FnOnce(&mut [f32]) -> R,
) -> R {
    saved.clear();
    for &(q, new) in crossers {
        let slot = q as usize * dim_count + dim as usize;
        saved.push(diffs[slot]);
        diffs[slot] = new;
    }
    let out = f(diffs);
    for (&(q, _), &old) in crossers.iter().zip(saved.iter()) {
        diffs[q as usize * dim_count + dim as usize] = old;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_akm::rkd::{dist_sq, Node, RkdTree};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// TreeSource over a plain randomized k-d tree.
    struct RkdSource<'a>(&'a RkdTree);

    impl TreeSource for RkdSource<'_> {
        fn root(&self) -> usize {
            self.0.root() as usize
        }
        fn view(&self, node: usize) -> ViewNode {
            match &self.0.nodes()[node] {
                Node::Internal {
                    dim,
                    value,
                    left,
                    right,
                } => ViewNode::Internal {
                    dim: *dim,
                    value: *value,
                    left: *left as usize,
                    right: *right as usize,
                },
                Node::Leaf { .. } => ViewNode::Leaf,
            }
        }
    }

    /// Collects, per query, every cluster in every leaf the query reaches.
    struct Collector<'a> {
        tree: &'a RkdTree,
        reached: Vec<Vec<u32>>,
    }

    impl TraversalVisitor for Collector<'_> {
        type Out = ();
        type Err = std::convert::Infallible;

        fn inactive(&mut self, _node: usize) -> Result<(), Self::Err> {
            Ok(())
        }
        fn opaque(&mut self, _node: usize, _a: &[ActiveQuery]) -> Result<(), Self::Err> {
            unreachable!("real trees have no opaque nodes")
        }
        fn leaf(&mut self, node: usize, active: &[ActiveQuery]) -> Result<(), Self::Err> {
            if let Node::Leaf { clusters } = &self.tree.nodes()[node] {
                for aq in active {
                    self.reached[aq.query as usize].extend(clusters.iter().copied());
                }
            }
            Ok(())
        }
        fn internal(
            &mut self,
            _n: usize,
            _d: u32,
            _v: f32,
            _a: &[ActiveQuery],
            _l: (),
            _r: (),
        ) -> Result<(), Self::Err> {
            Ok(())
        }
    }

    #[test]
    fn multi_query_traversal_reaches_every_cluster_within_threshold() {
        let mut rng = StdRng::seed_from_u64(21);
        let points: Vec<Vec<f32>> = (0..150)
            .map(|_| (0..10).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let tree = RkdTree::build(&points, 2, &mut StdRng::seed_from_u64(22));
        let queries: Vec<Vec<f32>> = (0..12)
            .map(|_| (0..10).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let thresholds: Vec<f32> = (0..12).map(|i| 0.02 + 0.03 * i as f32).collect();

        let mut visitor = Collector {
            tree: &tree,
            reached: vec![Vec::new(); queries.len()],
        };
        traverse(&RkdSource(&tree), &queries, &thresholds, &mut visitor).expect("infallible");

        for (qi, q) in queries.iter().enumerate() {
            let within: Vec<u32> = (0..points.len() as u32)
                .filter(|&c| dist_sq(q, &points[c as usize]) <= thresholds[qi])
                .collect();
            for c in within {
                assert!(
                    visitor.reached[qi].contains(&c),
                    "query {qi} missed cluster {c}"
                );
            }
        }
    }

    #[test]
    fn negative_threshold_deactivates_a_query() {
        let points: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let tree = RkdTree::build(&points, 1, &mut StdRng::seed_from_u64(1));
        let queries = vec![vec![0.0f32, 0.0], vec![1.0f32, 1.0]];
        let thresholds = vec![-1.0f32, 0.5];
        let mut visitor = Collector {
            tree: &tree,
            reached: vec![Vec::new(); 2],
        };
        traverse(&RkdSource(&tree), &queries, &thresholds, &mut visitor).expect("infallible");
        assert!(visitor.reached[0].is_empty());
        assert!(!visitor.reached[1].is_empty());
    }

    #[test]
    fn shared_traversal_equals_per_query_traversals() {
        // The node-sharing optimization must not change which leaves each
        // query reaches (it only merges the walks).
        let mut rng = StdRng::seed_from_u64(31);
        let points: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..6).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let tree = RkdTree::build(&points, 2, &mut StdRng::seed_from_u64(32));
        let queries: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..6).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let thresholds = vec![0.08f32; queries.len()];

        let mut shared = Collector {
            tree: &tree,
            reached: vec![Vec::new(); queries.len()],
        };
        traverse(&RkdSource(&tree), &queries, &thresholds, &mut shared).expect("infallible");

        for (qi, q) in queries.iter().enumerate() {
            let mut solo = Collector {
                tree: &tree,
                reached: vec![Vec::new()],
            };
            traverse(
                &RkdSource(&tree),
                std::slice::from_ref(q),
                &[thresholds[qi]],
                &mut solo,
            )
            .expect("infallible");
            let mut a = shared.reached[qi].clone();
            let mut b = solo.reached[0].clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {qi}");
        }
    }
}
