//! Verification-object types for authenticated BoVW encoding
//! (`MRKDSearch`, paper Alg. 1) and their canonical wire encoding.

use imageproof_crypto::merkle::SubsetProof;
use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::Digest;

/// How a leaf cluster's centroid is disclosed in the VO.
#[derive(Clone, Debug, PartialEq)]
pub enum Reveal {
    /// All coordinates, bound directly into the leaf digest (base scheme).
    Full { coords: Vec<f32> },
    /// All coordinates, bound via the per-cluster dimension Merkle root
    /// (§VI-A optimization, used for nearest-neighbour candidates — the
    /// client recomputes the dimension root itself).
    FullCompressed { coords: Vec<f32> },
    /// A subset of dimension *blocks* with a batched Merkle proof,
    /// sufficient to lower-bound the distance to every query vector that
    /// reaches the leaf (§VI-A optimization, used for non-candidates).
    Partial {
        dim_root: Digest,
        /// `(block index, block coordinates)` pairs, strictly ascending by
        /// block index; block geometry is fixed by
        /// [`crate::tree::BLOCK_DIMS`].
        blocks: Vec<(u32, Vec<f32>)>,
        proof: SubsetProof,
    },
}

/// One cluster of a disclosed leaf.
#[derive(Clone, Debug, PartialEq)]
pub struct VoLeafEntry {
    pub cluster: u32,
    /// `h_{Γ_{c}}`: digest of the cluster's Merkle inverted list (Def. 3
    /// embeds it in the leaf).
    pub inv_digest: Digest,
    pub reveal: Reveal,
}

/// A node of the VO tree mirroring the SP's traversal of one MRKD-tree.
#[derive(Clone, Debug, PartialEq)]
pub enum VoNode {
    /// Subtree no query vector reached: only its digest (Alg. 1 line 2).
    Pruned(Digest),
    /// Disclosed internal node: the splitting hyperplane plus children
    /// (Alg. 1 line 8).
    Internal {
        dim: u32,
        value: f32,
        left: Box<VoNode>,
        right: Box<VoNode>,
    },
    /// Disclosed leaf (Alg. 1 lines 4–7).
    Leaf { entries: Vec<VoLeafEntry> },
}

/// The complete BoVW-encoding VO: one [`VoNode`] tree per MRKD-tree
/// (`{VO_{C,i}}` of Alg. 5).
#[derive(Clone, Debug, PartialEq)]
pub struct BovwVo {
    pub trees: Vec<VoNode>,
}

impl VoNode {
    /// Counts (disclosed internal/leaf nodes, pruned stubs).
    pub fn node_counts(&self) -> (usize, usize) {
        match self {
            VoNode::Pruned(_) => (0, 1),
            VoNode::Leaf { .. } => (1, 0),
            VoNode::Internal { left, right, .. } => {
                let (dl, pl) = left.node_counts();
                let (dr, pr) = right.node_counts();
                (1 + dl + dr, pl + pr)
            }
        }
    }
}

/// Read cursor over a flat digest list, used to re-instantiate a VO
/// template with another shard's digests ([`VoNode::with_digests`]). All
/// access is bounds-checked: running past the end yields `None`, never a
/// panic — the digests come from an untrusted sharded response.
pub struct DigestCursor<'a> {
    digests: &'a [Digest],
    pos: usize,
}

impl<'a> DigestCursor<'a> {
    pub fn new(digests: &'a [Digest]) -> DigestCursor<'a> {
        DigestCursor { digests, pos: 0 }
    }

    fn next(&mut self) -> Option<&'a Digest> {
        let d = self.digests.get(self.pos)?;
        self.pos += 1;
        Some(d)
    }

    /// True when every digest has been consumed — a patch must use its
    /// payload exactly.
    pub fn exhausted(&self) -> bool {
        self.pos == self.digests.len()
    }
}

impl VoNode {
    /// Appends this tree's shard-varying digests — pruned-subtree stubs and
    /// leaf-embedded inverted-list digests — to `out`, in DFS order
    /// (node, then left subtree, then right). Everything else in a VO
    /// (splits, cluster ids, centroid reveals, subset proofs) depends only
    /// on the query and the shared codebook, so two shards' VOs for one
    /// query differ exactly in this digest sequence.
    pub fn collect_digests(&self, out: &mut Vec<Digest>) {
        match self {
            VoNode::Pruned(d) => out.push(*d),
            VoNode::Internal { left, right, .. } => {
                left.collect_digests(out);
                right.collect_digests(out);
            }
            VoNode::Leaf { entries } => {
                for e in entries {
                    out.push(e.inv_digest);
                }
            }
        }
    }

    /// Rebuilds this tree with its shard-varying digests replaced from
    /// `cur`, in the same DFS order [`VoNode::collect_digests`] emits.
    /// Returns `None` when the cursor runs dry (shape/payload mismatch).
    pub fn with_digests(&self, cur: &mut DigestCursor<'_>) -> Option<VoNode> {
        match self {
            VoNode::Pruned(_) => Some(VoNode::Pruned(*cur.next()?)),
            VoNode::Internal {
                dim,
                value,
                left,
                right,
            } => {
                let left = left.with_digests(cur)?;
                let right = right.with_digests(cur)?;
                Some(VoNode::Internal {
                    dim: *dim,
                    value: *value,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            VoNode::Leaf { entries } => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    out.push(VoLeafEntry {
                        cluster: e.cluster,
                        inv_digest: *cur.next()?,
                        reveal: e.reveal.clone(),
                    });
                }
                Some(VoNode::Leaf { entries: out })
            }
        }
    }
}

impl BovwVo {
    /// See [`VoNode::collect_digests`]; trees contribute in order.
    pub fn collect_digests(&self, out: &mut Vec<Digest>) {
        for t in &self.trees {
            t.collect_digests(out);
        }
    }

    /// See [`VoNode::with_digests`]; the caller checks cursor exhaustion
    /// across whatever set of VOs shares one digest payload.
    pub fn with_digests(&self, cur: &mut DigestCursor<'_>) -> Option<BovwVo> {
        let mut trees = Vec::with_capacity(self.trees.len());
        for t in &self.trees {
            trees.push(t.with_digests(cur)?);
        }
        Some(BovwVo { trees })
    }
}

const TAG_PRUNED: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;

const TAG_FULL: u8 = 0;
const TAG_FULL_COMPRESSED: u8 = 1;
const TAG_PARTIAL: u8 = 2;

impl Encode for Reveal {
    fn encode(&self, w: &mut Writer) {
        match self {
            Reveal::Full { coords } => {
                w.u8(TAG_FULL);
                w.vseq_len(coords.len());
                for &c in coords {
                    w.f32(c);
                }
            }
            Reveal::FullCompressed { coords } => {
                w.u8(TAG_FULL_COMPRESSED);
                w.vseq_len(coords.len());
                for &c in coords {
                    w.f32(c);
                }
            }
            Reveal::Partial {
                dim_root,
                blocks,
                proof,
            } => {
                w.u8(TAG_PARTIAL);
                w.digest(dim_root);
                w.vseq_len(blocks.len());
                for (b, coords) in blocks {
                    w.varint(*b as u64);
                    w.vseq_len(coords.len());
                    for &v in coords {
                        w.f32(v);
                    }
                }
                w.varint(proof.n_leaves as u64);
                w.vseq_len(proof.fill.len());
                for d in &proof.fill {
                    w.digest(d);
                }
            }
        }
    }
}

impl Decode for Reveal {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        match tag {
            TAG_FULL | TAG_FULL_COMPRESSED => {
                let n = r.vseq_len()?;
                let mut coords = Vec::with_capacity(n);
                for _ in 0..n {
                    coords.push(r.f32()?);
                }
                if tag == TAG_FULL {
                    Ok(Reveal::Full { coords })
                } else {
                    Ok(Reveal::FullCompressed { coords })
                }
            }
            TAG_PARTIAL => {
                let dim_root = r.digest()?;
                let n = r.vseq_len()?;
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    let b = u32::try_from(r.varint()?).map_err(|_| WireError::LengthOverflow)?;
                    let len = r.vseq_len()?;
                    let mut coords = Vec::with_capacity(len);
                    for _ in 0..len {
                        coords.push(r.f32()?);
                    }
                    blocks.push((b, coords));
                }
                let n_leaves = u32::try_from(r.varint()?).map_err(|_| WireError::LengthOverflow)?;
                let fills = r.vseq_len()?;
                let mut fill = Vec::with_capacity(fills);
                for _ in 0..fills {
                    fill.push(r.digest()?);
                }
                Ok(Reveal::Partial {
                    dim_root,
                    blocks,
                    proof: SubsetProof { n_leaves, fill },
                })
            }
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Encode for VoLeafEntry {
    fn encode(&self, w: &mut Writer) {
        w.varint(self.cluster as u64);
        w.digest(&self.inv_digest);
        self.reveal.encode(w);
    }
}

impl Decode for VoLeafEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VoLeafEntry {
            cluster: u32::try_from(r.varint()?).map_err(|_| WireError::LengthOverflow)?,
            inv_digest: r.digest()?,
            reveal: Reveal::decode(r)?,
        })
    }
}

/// Deepest `Internal` nesting the decoder accepts. A hostile VO can claim
/// one internal node per two bytes, so unbounded recursion would let the
/// SP overflow the client's stack; real MRKD-trees are ~log₂(clusters)
/// deep, orders of magnitude below this cap.
pub const MAX_VO_DEPTH: usize = 512;

impl Encode for VoNode {
    fn encode(&self, w: &mut Writer) {
        match self {
            VoNode::Pruned(d) => {
                w.u8(TAG_PRUNED);
                w.digest(d);
            }
            VoNode::Internal {
                dim,
                value,
                left,
                right,
            } => {
                w.u8(TAG_INTERNAL);
                w.varint(*dim as u64);
                w.f32(*value);
                left.encode(w);
                right.encode(w);
            }
            VoNode::Leaf { entries } => {
                w.u8(TAG_LEAF);
                w.vseq_len(entries.len());
                for e in entries {
                    e.encode(w);
                }
            }
        }
    }
}

impl VoNode {
    fn decode_at(r: &mut Reader<'_>, depth: usize) -> Result<Self, WireError> {
        if depth > MAX_VO_DEPTH {
            return Err(WireError::DepthExceeded);
        }
        match r.u8()? {
            TAG_PRUNED => Ok(VoNode::Pruned(r.digest()?)),
            TAG_INTERNAL => Ok(VoNode::Internal {
                dim: u32::try_from(r.varint()?).map_err(|_| WireError::LengthOverflow)?,
                value: r.f32()?,
                left: Box::new(VoNode::decode_at(r, depth + 1)?),
                right: Box::new(VoNode::decode_at(r, depth + 1)?),
            }),
            TAG_LEAF => {
                let n = r.vseq_len()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(VoLeafEntry::decode(r)?);
                }
                Ok(VoNode::Leaf { entries })
            }
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Decode for VoNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        VoNode::decode_at(r, 0)
    }
}

impl Encode for BovwVo {
    fn encode(&self, w: &mut Writer) {
        w.vseq_len(self.trees.len());
        for t in &self.trees {
            t.encode(w);
        }
    }
}

impl Decode for BovwVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.vseq_len()?;
        let mut trees = Vec::with_capacity(n);
        for _ in 0..n {
            trees.push(VoNode::decode(r)?);
        }
        Ok(BovwVo { trees })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_leaf() -> VoNode {
        VoNode::Leaf {
            entries: vec![
                VoLeafEntry {
                    cluster: 3,
                    inv_digest: Digest::of(b"inv-3"),
                    reveal: Reveal::Full {
                        coords: vec![0.5, -1.25],
                    },
                },
                VoLeafEntry {
                    cluster: 9,
                    inv_digest: Digest::of(b"inv-9"),
                    reveal: Reveal::Partial {
                        dim_root: Digest::of(b"dims"),
                        blocks: vec![(0, vec![1.0, 2.0]), (4, vec![-0.0])],
                        proof: SubsetProof {
                            n_leaves: 8,
                            fill: vec![Digest::of(b"fill-a"), Digest::of(b"fill-b")],
                        },
                    },
                },
            ],
        }
    }

    #[test]
    fn reveal_roundtrips_all_variants() {
        for reveal in [
            Reveal::Full {
                coords: vec![1.0, f32::MIN_POSITIVE, -3.5],
            },
            Reveal::FullCompressed { coords: Vec::new() },
            Reveal::Partial {
                dim_root: Digest::of(b"root"),
                blocks: vec![(7, vec![0.25])],
                proof: SubsetProof {
                    n_leaves: 4,
                    fill: vec![Digest::of(b"f")],
                },
            },
        ] {
            let back = Reveal::from_wire(&reveal.to_wire()).expect("roundtrip");
            assert_eq!(back, reveal);
        }
    }

    #[test]
    fn vo_leaf_entry_roundtrips() {
        let entry = VoLeafEntry {
            cluster: 42,
            inv_digest: Digest::of(b"list"),
            reveal: Reveal::FullCompressed {
                coords: vec![2.0, 4.0],
            },
        };
        assert_eq!(VoLeafEntry::from_wire(&entry.to_wire()).expect("rt"), entry);
    }

    #[test]
    fn vo_node_and_bovw_vo_roundtrip() {
        let node = VoNode::Internal {
            dim: 1,
            value: 0.75,
            left: Box::new(VoNode::Pruned(Digest::of(b"pruned"))),
            right: Box::new(sample_leaf()),
        };
        assert_eq!(VoNode::from_wire(&node.to_wire()).expect("rt"), node);
        let vo = BovwVo {
            trees: vec![node, VoNode::Pruned(Digest::of(b"other"))],
        };
        assert_eq!(BovwVo::from_wire(&vo.to_wire()).expect("rt"), vo);
    }

    #[test]
    fn decoder_accepts_deep_but_honest_nesting() {
        let mut node = VoNode::Pruned(Digest::of(b"base"));
        for d in 0..64 {
            node = VoNode::Internal {
                dim: d,
                value: 0.0,
                left: Box::new(node),
                right: Box::new(VoNode::Pruned(Digest::of(b"r"))),
            };
        }
        assert_eq!(VoNode::from_wire(&node.to_wire()).expect("rt"), node);
    }

    #[test]
    fn digest_patching_roundtrips_and_replaces_every_slot() {
        let vo = BovwVo {
            trees: vec![
                VoNode::Internal {
                    dim: 1,
                    value: 0.75,
                    left: Box::new(VoNode::Pruned(Digest::of(b"pruned"))),
                    right: Box::new(sample_leaf()),
                },
                VoNode::Pruned(Digest::of(b"other")),
            ],
        };
        let mut own = Vec::new();
        vo.collect_digests(&mut own);
        // One pruned stub + two leaf inv digests + one pruned tree.
        assert_eq!(own.len(), 4);

        // Patching with its own digests reproduces the VO exactly.
        let mut cur = DigestCursor::new(&own);
        let same = vo.with_digests(&mut cur).expect("self patch");
        assert!(cur.exhausted());
        assert_eq!(same, vo);

        // Patching with fresh digests replaces exactly the collected slots.
        let fresh: Vec<Digest> = (0..own.len() as u8)
            .map(|i| Digest::of(&[i, 0xD1]))
            .collect();
        let mut cur = DigestCursor::new(&fresh);
        let patched = vo.with_digests(&mut cur).expect("patch");
        assert!(cur.exhausted());
        let mut collected = Vec::new();
        patched.collect_digests(&mut collected);
        assert_eq!(collected, fresh);
        // Geometry untouched: zeroing digests on both sides yields equality.
        let zero: Vec<Digest> = fresh.iter().map(|_| Digest::of(b"z")).collect();
        let a = vo.with_digests(&mut DigestCursor::new(&zero)).unwrap();
        let b = patched.with_digests(&mut DigestCursor::new(&zero)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn digest_patching_rejects_short_payloads() {
        let vo = BovwVo {
            trees: vec![VoNode::Internal {
                dim: 0,
                value: 0.0,
                left: Box::new(VoNode::Pruned(Digest::of(b"l"))),
                right: Box::new(VoNode::Pruned(Digest::of(b"r"))),
            }],
        };
        let one = [Digest::of(b"only")];
        let mut cur = DigestCursor::new(&one);
        assert!(vo.with_digests(&mut cur).is_none(), "short payload");
        let three = [Digest::of(b"a"), Digest::of(b"b"), Digest::of(b"c")];
        let mut cur = DigestCursor::new(&three);
        assert!(vo.with_digests(&mut cur).is_some());
        assert!(
            !cur.exhausted(),
            "long payload leaves the cursor unfinished"
        );
    }

    #[test]
    fn decoder_rejects_unbounded_nesting_without_overflowing() {
        // A 2-bytes-per-level hostile prefix: TAG_INTERNAL claims another
        // internal node far past any honest tree depth. The decoder must
        // return DepthExceeded (or UnexpectedEnd) rather than recurse into
        // a stack overflow.
        let mut bytes = Vec::new();
        for _ in 0..(MAX_VO_DEPTH * 4) {
            bytes.push(TAG_INTERNAL);
            bytes.push(1); // varint dim
            bytes.extend_from_slice(&0f32.to_le_bytes());
        }
        assert_eq!(VoNode::from_wire(&bytes), Err(WireError::DepthExceeded));
    }
}
