//! Verification-object types for authenticated BoVW encoding
//! (`MRKDSearch`, paper Alg. 1) and their canonical wire encoding.

use imageproof_crypto::merkle::SubsetProof;
use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::Digest;

/// How a leaf cluster's centroid is disclosed in the VO.
#[derive(Clone, Debug, PartialEq)]
pub enum Reveal {
    /// All coordinates, bound directly into the leaf digest (base scheme).
    Full { coords: Vec<f32> },
    /// All coordinates, bound via the per-cluster dimension Merkle root
    /// (§VI-A optimization, used for nearest-neighbour candidates — the
    /// client recomputes the dimension root itself).
    FullCompressed { coords: Vec<f32> },
    /// A subset of dimension *blocks* with a batched Merkle proof,
    /// sufficient to lower-bound the distance to every query vector that
    /// reaches the leaf (§VI-A optimization, used for non-candidates).
    Partial {
        dim_root: Digest,
        /// `(block index, block coordinates)` pairs, strictly ascending by
        /// block index; block geometry is fixed by
        /// [`crate::tree::BLOCK_DIMS`].
        blocks: Vec<(u32, Vec<f32>)>,
        proof: SubsetProof,
    },
}

/// One cluster of a disclosed leaf.
#[derive(Clone, Debug, PartialEq)]
pub struct VoLeafEntry {
    pub cluster: u32,
    /// `h_{Γ_{c}}`: digest of the cluster's Merkle inverted list (Def. 3
    /// embeds it in the leaf).
    pub inv_digest: Digest,
    pub reveal: Reveal,
}

/// A node of the VO tree mirroring the SP's traversal of one MRKD-tree.
#[derive(Clone, Debug, PartialEq)]
pub enum VoNode {
    /// Subtree no query vector reached: only its digest (Alg. 1 line 2).
    Pruned(Digest),
    /// Disclosed internal node: the splitting hyperplane plus children
    /// (Alg. 1 line 8).
    Internal {
        dim: u32,
        value: f32,
        left: Box<VoNode>,
        right: Box<VoNode>,
    },
    /// Disclosed leaf (Alg. 1 lines 4–7).
    Leaf { entries: Vec<VoLeafEntry> },
}

/// The complete BoVW-encoding VO: one [`VoNode`] tree per MRKD-tree
/// (`{VO_{C,i}}` of Alg. 5).
#[derive(Clone, Debug, PartialEq)]
pub struct BovwVo {
    pub trees: Vec<VoNode>,
}

impl VoNode {
    /// Counts (disclosed internal/leaf nodes, pruned stubs).
    pub fn node_counts(&self) -> (usize, usize) {
        match self {
            VoNode::Pruned(_) => (0, 1),
            VoNode::Leaf { .. } => (1, 0),
            VoNode::Internal { left, right, .. } => {
                let (dl, pl) = left.node_counts();
                let (dr, pr) = right.node_counts();
                (1 + dl + dr, pl + pr)
            }
        }
    }
}

const TAG_PRUNED: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;

const TAG_FULL: u8 = 0;
const TAG_FULL_COMPRESSED: u8 = 1;
const TAG_PARTIAL: u8 = 2;

impl Encode for Reveal {
    fn encode(&self, w: &mut Writer) {
        match self {
            Reveal::Full { coords } => {
                w.u8(TAG_FULL);
                w.seq_len(coords.len());
                for &c in coords {
                    w.f32(c);
                }
            }
            Reveal::FullCompressed { coords } => {
                w.u8(TAG_FULL_COMPRESSED);
                w.seq_len(coords.len());
                for &c in coords {
                    w.f32(c);
                }
            }
            Reveal::Partial {
                dim_root,
                blocks,
                proof,
            } => {
                w.u8(TAG_PARTIAL);
                w.digest(dim_root);
                w.seq_len(blocks.len());
                for (b, coords) in blocks {
                    w.u32(*b);
                    w.seq_len(coords.len());
                    for &v in coords {
                        w.f32(v);
                    }
                }
                w.u32(proof.n_leaves);
                w.seq_len(proof.fill.len());
                for d in &proof.fill {
                    w.digest(d);
                }
            }
        }
    }
}

impl Decode for Reveal {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        match tag {
            TAG_FULL | TAG_FULL_COMPRESSED => {
                let n = r.seq_len()?;
                let mut coords = Vec::with_capacity(n);
                for _ in 0..n {
                    coords.push(r.f32()?);
                }
                if tag == TAG_FULL {
                    Ok(Reveal::Full { coords })
                } else {
                    Ok(Reveal::FullCompressed { coords })
                }
            }
            TAG_PARTIAL => {
                let dim_root = r.digest()?;
                let n = r.seq_len()?;
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    let b = r.u32()?;
                    let len = r.seq_len()?;
                    let mut coords = Vec::with_capacity(len);
                    for _ in 0..len {
                        coords.push(r.f32()?);
                    }
                    blocks.push((b, coords));
                }
                let n_leaves = r.u32()?;
                let fills = r.seq_len()?;
                let mut fill = Vec::with_capacity(fills);
                for _ in 0..fills {
                    fill.push(r.digest()?);
                }
                Ok(Reveal::Partial {
                    dim_root,
                    blocks,
                    proof: SubsetProof { n_leaves, fill },
                })
            }
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Encode for VoLeafEntry {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.cluster);
        w.digest(&self.inv_digest);
        self.reveal.encode(w);
    }
}

impl Encode for VoNode {
    fn encode(&self, w: &mut Writer) {
        match self {
            VoNode::Pruned(d) => {
                w.u8(TAG_PRUNED);
                w.digest(d);
            }
            VoNode::Internal {
                dim,
                value,
                left,
                right,
            } => {
                w.u8(TAG_INTERNAL);
                w.u32(*dim);
                w.f32(*value);
                left.encode(w);
                right.encode(w);
            }
            VoNode::Leaf { entries } => {
                w.u8(TAG_LEAF);
                w.seq_len(entries.len());
                for e in entries {
                    e.encode(w);
                }
            }
        }
    }
}

impl Decode for VoNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_PRUNED => Ok(VoNode::Pruned(r.digest()?)),
            TAG_INTERNAL => Ok(VoNode::Internal {
                dim: r.u32()?,
                value: r.f32()?,
                left: Box::new(VoNode::decode(r)?),
                right: Box::new(VoNode::decode(r)?),
            }),
            TAG_LEAF => {
                let n = r.seq_len()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let cluster = r.u32()?;
                    let inv_digest = r.digest()?;
                    let reveal = Reveal::decode(r)?;
                    entries.push(VoLeafEntry {
                        cluster,
                        inv_digest,
                        reveal,
                    });
                }
                Ok(VoNode::Leaf { entries })
            }
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Encode for BovwVo {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.trees.len());
        for t in &self.trees {
            t.encode(w);
        }
    }
}

impl Decode for BovwVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut trees = Vec::with_capacity(n);
        for _ in 0..n {
            trees.push(VoNode::decode(r)?);
        }
        Ok(BovwVo { trees })
    }
}
