//! SP-side `MRKDSearch` (paper Alg. 1): authenticated candidate collection
//! and VO generation, with node sharing across query vectors.

use crate::traverse::{traverse, ActiveQuery, TraversalVisitor, TreeSource, ViewNode};
use crate::tree::{CandidateMode, MrkdForest, MrkdTree};
use crate::vo::{BovwVo, Reveal, VoLeafEntry, VoNode};
use imageproof_akm::kernel::dist_sq_within;
use imageproof_akm::rkd::Node;
use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_parallel::{par_map, Concurrency};
use std::collections::BTreeSet;
use std::convert::Infallible;

/// Traversal statistics; the "ratio of shared nodes" plotted in Figs. 7–8 is
/// `nodes_shared / nodes_traversed`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Disclosed nodes visited by at least one query.
    pub nodes_traversed: usize,
    /// Disclosed nodes visited by two or more queries simultaneously.
    pub nodes_shared: usize,
    /// Leaves disclosed.
    pub leaves_visited: usize,
    /// Digests copied from the build-time tables into the VO (pruned-stub
    /// node digests and per-cluster inverted-list digests) instead of being
    /// recomputed — the MRKD share of the SP's hash-cache hits.
    pub digests_cached: usize,
}

impl SearchStats {
    /// Fraction of traversed nodes that served multiple queries.
    pub fn shared_ratio(&self) -> f64 {
        if self.nodes_traversed == 0 {
            0.0
        } else {
            self.nodes_shared as f64 / self.nodes_traversed as f64
        }
    }

    fn merge(&mut self, other: &SearchStats) {
        self.nodes_traversed += other.nodes_traversed;
        self.nodes_shared += other.nodes_shared;
        self.leaves_visited += other.leaves_visited;
        self.digests_cached += other.digests_cached;
    }
}

/// Output of `MRKDSearch` over the whole forest.
#[derive(Clone, Debug)]
pub struct SearchOutput {
    /// One VO tree per MRKD-tree (`{VO_{C,i}}` in Alg. 5).
    pub vo: BovwVo,
    /// Per query: deduplicated `(cluster, squared distance)` candidates
    /// within the threshold, across all trees (`∪ C_i`).
    pub candidates: Vec<Vec<(u32, f32)>>,
    pub stats: SearchStats,
}

/// Records one finished forest search into the global observability
/// registry (no-op when recording is disabled; never affects the VO).
fn record_search(mode: &'static str, stats: &SearchStats) {
    if !imageproof_obs::enabled() {
        return;
    }
    let reg = imageproof_obs::global();
    reg.counter("imageproof_mrkd_searches_total", &[("mode", mode)])
        .inc();
    for (kind, n) in [
        ("traversed", stats.nodes_traversed),
        ("shared", stats.nodes_shared),
        ("leaves", stats.leaves_visited),
    ] {
        reg.counter(
            "imageproof_mrkd_nodes_total",
            &[("mode", mode), ("kind", kind)],
        )
        .add(n as u64);
    }
    reg.counter("imageproof_mrkd_digests_cached_total", &[("mode", mode)])
        .add(stats.digests_cached as u64);
}

/// [`TreeSource`] over a real MRKD-tree.
struct MrkdSource<'a>(&'a MrkdTree);

impl TreeSource for MrkdSource<'_> {
    fn root(&self) -> usize {
        self.0.rkd().root() as usize
    }
    // audit:allow(panic) SP-side source: node ids come from the SP's own arena
    fn view(&self, node: usize) -> ViewNode {
        match &self.0.rkd().nodes()[node] {
            Node::Internal {
                dim,
                value,
                left,
                right,
            } => ViewNode::Internal {
                dim: *dim,
                value: *value,
                left: *left as usize,
                right: *right as usize,
            },
            Node::Leaf { .. } => ViewNode::Leaf,
        }
    }
}

struct SpVisitor<'a> {
    forest: &'a MrkdForest,
    tree: &'a MrkdTree,
    queries: &'a [Vec<f32>],
    thresholds_sq: &'a [f32],
    candidates: &'a mut [Vec<(u32, f32)>],
    stats: SearchStats,
}

impl TraversalVisitor for SpVisitor<'_> {
    type Out = VoNode;
    type Err = Infallible;

    fn inactive(&mut self, node: usize) -> Result<VoNode, Infallible> {
        self.stats.digests_cached += 1;
        Ok(VoNode::Pruned(self.tree.node_digest(node as u32)))
    }

    // audit:allow(panic) the SP walks its own real tree, which never yields opaque nodes
    fn opaque(&mut self, _node: usize, _active: &[ActiveQuery]) -> Result<VoNode, Infallible> {
        unreachable!("the SP walks the real tree, which has no opaque nodes")
    }

    // audit:allow(panic) SP-side visitor over the SP's own tree: leaf callbacks only fire on real leaves
    fn leaf(&mut self, node: usize, active: &[ActiveQuery]) -> Result<VoNode, Infallible> {
        self.stats.nodes_traversed += 1;
        self.stats.leaves_visited += 1;
        if active.len() > 1 {
            self.stats.nodes_shared += 1;
        }
        let Node::Leaf { clusters } = &self.tree.rkd().nodes()[node] else {
            unreachable!("leaf callback on non-leaf");
        };
        let entries = clusters
            .iter()
            .map(|&cluster| self.leaf_entry(cluster, active))
            .collect();
        Ok(VoNode::Leaf { entries })
    }

    fn internal(
        &mut self,
        _node: usize,
        dim: u32,
        value: f32,
        active: &[ActiveQuery],
        left: VoNode,
        right: VoNode,
    ) -> Result<VoNode, Infallible> {
        self.stats.nodes_traversed += 1;
        if active.len() > 1 {
            self.stats.nodes_shared += 1;
        }
        Ok(VoNode::Internal {
            dim,
            value,
            left: Box::new(left),
            right: Box::new(right),
        })
    }
}

impl SpVisitor<'_> {
    // audit:allow(panic) SP-side: cluster ids and query indices come from the SP's own forest and walker
    fn leaf_entry(&mut self, cluster: u32, active: &[ActiveQuery]) -> VoLeafEntry {
        let center = &self.forest.centers()[cluster as usize];
        let mut is_candidate = false;
        for aq in active {
            let q = aq.query as usize;
            // Early-exit kernel: `None` proves d > threshold (not a
            // candidate); `Some` is the exact distance, compared exactly as
            // the scalar code did.
            let Some(d) = dist_sq_within(&self.queries[q], center, self.thresholds_sq[q]) else {
                continue;
            };
            if d <= self.thresholds_sq[q] {
                self.candidates[q].push((cluster, d));
                is_candidate = true;
            }
        }
        let reveal = match self.forest.mode() {
            CandidateMode::Full => Reveal::Full {
                coords: center.clone(),
            },
            CandidateMode::Compressed => {
                if is_candidate {
                    Reveal::FullCompressed {
                        coords: center.clone(),
                    }
                } else {
                    self.partial_reveal(cluster, active)
                }
            }
        };
        self.stats.digests_cached += 1;
        VoLeafEntry {
            cluster,
            inv_digest: self.forest.inv_digest(cluster),
            reveal,
        }
    }

    /// Chooses a dimension-block subset proving `dist(q, c) ≥ t_q` for every
    /// active query (§VI-A): greedily picks the blocks with the largest
    /// contributions, then validates with the client's exact summation.
    // audit:allow(panic) SP-side: indices come from the SP's own forest; compressed mode always builds dimension trees
    fn partial_reveal(&self, cluster: u32, active: &[ActiveQuery]) -> Reveal {
        let center = &self.forest.centers()[cluster as usize];
        let dim_tree = self
            .forest
            .dim_tree(cluster)
            .expect("compressed mode has dimension trees");
        let dim = center.len();
        let total_blocks = crate::tree::n_blocks(dim);
        let mut selected: BTreeSet<u32> = BTreeSet::new();

        for aq in active {
            let q = &self.queries[aq.query as usize];
            let t = self.thresholds_sq[aq.query as usize];
            // Each block's contribution once, up front: the greedy ordering
            // and the repeated partial-sum validations below all read from
            // this cache (every cached value is bit-identical to
            // recomputation, so selection — and hence the VO — is
            // unchanged).
            let contrib: Vec<f32> = (0..total_blocks as u32)
                .map(|b| block_contribution(q, center, b))
                .collect();
            if partial_sum_selected(&selected, &contrib) >= t {
                continue;
            }
            // Blocks by descending contribution for this query.
            let mut order: Vec<u32> = (0..total_blocks as u32)
                .filter(|b| !selected.contains(b))
                .collect();
            order.sort_by(|&a, &b| contrib[b as usize].total_cmp(&contrib[a as usize]));
            for b in order {
                selected.insert(b);
                if partial_sum_selected(&selected, &contrib) >= t {
                    break;
                }
            }
            debug_assert!(
                partial_sum_selected(&selected, &contrib) >= t,
                "a non-candidate's full distance must exceed the threshold"
            );
        }

        if selected.is_empty() {
            // Every active query's threshold was already met by the empty
            // sum (t = 0, query coincides with its winner); reveal one block
            // anyway — the verifier rejects empty disclosures.
            selected.insert(0);
        }
        let indices: Vec<usize> = selected.iter().map(|&b| b as usize).collect();
        let proof = dim_tree.prove_subset(&indices);
        let blocks = selected
            .iter()
            .map(|&b| {
                (
                    b,
                    center[crate::tree::block_range(b as usize, dim)].to_vec(),
                )
            })
            .collect();
        Reveal::Partial {
            dim_root: dim_tree.root(),
            blocks,
            proof,
        }
    }
}

/// One dimension block's share of the squared distance. Delegates to the
/// chunked kernel, which is bit-identical to the sequential fold the client
/// performs over the block.
// audit:allow(panic) block_range clamps its end to the vector length, so the slices stay in bounds
fn block_contribution(q: &[f32], center: &[f32], block: u32) -> f32 {
    let range = crate::tree::block_range(block as usize, center.len());
    imageproof_akm::kernel::dist_sq(&q[range.clone()], &center[range])
}

/// The partial distance over selected blocks, summed in ascending block
/// order from per-block contributions (dimensions ascending within a
/// block) — the exact computation the client performs, so the SP validates
/// against the same float rounding. `contrib[b]` must hold
/// [`block_contribution`] of block `b`.
// audit:allow(panic) selected blocks are drawn from 0..total_blocks, the length of contrib
fn partial_sum_selected(blocks: &BTreeSet<u32>, contrib: &[f32]) -> f32 {
    blocks.iter().map(|&b| contrib[b as usize]).sum()
}

/// Client-side counterpart over the VO's revealed `(block, coords)` pairs.
/// Callers must have validated block indices and lengths beforehand.
// audit:allow(panic) block_range yields indices below q.len() even for hostile block ids (iterated, never sliced)
pub fn partial_sum_revealed(blocks: &[(u32, Vec<f32>)], q: &[f32]) -> f32 {
    blocks
        .iter()
        .map(|(b, coords)| {
            crate::tree::block_range(*b as usize, q.len())
                .zip(coords)
                .map(|(d, &v)| {
                    let diff = q[d] - v;
                    diff * diff
                })
                // audit:allow(determinism) fixed block order, shared verbatim by SP and client
                .sum::<f32>()
        })
        .sum()
}

/// One tree's share of `MRKDSearch`: the VO tree, per-query candidates in
/// leaf-visit order, and traversal stats. Trees never share state, so this
/// is the unit the parallel path fans out.
fn search_tree(
    forest: &MrkdForest,
    tree: &MrkdTree,
    queries: &[Vec<f32>],
    thresholds_sq: &[f32],
) -> (VoNode, Vec<Vec<(u32, f32)>>, SearchStats) {
    let mut candidates = vec![Vec::new(); queries.len()];
    let mut visitor = SpVisitor {
        forest,
        tree,
        queries,
        thresholds_sq,
        candidates: &mut candidates,
        stats: SearchStats::default(),
    };
    let vo = match traverse(&MrkdSource(tree), queries, thresholds_sq, &mut visitor) {
        Ok(vo) => vo,
        Err(e) => match e {},
    };
    let stats = visitor.stats;
    (vo, candidates, stats)
}

/// `MRKDSearch` with node sharing: one traversal per tree serving all query
/// vectors, producing the VO forest plus the candidate sets.
pub fn mrkd_search(
    forest: &MrkdForest,
    queries: &[Vec<f32>],
    thresholds_sq: &[f32],
) -> SearchOutput {
    mrkd_search_with(forest, queries, thresholds_sq, Concurrency::serial())
}

/// [`mrkd_search`] with the per-tree traversals fanned out across workers.
///
/// Determinism: each tree's traversal (and hence its VO subtree, candidate
/// order, and stats) depends only on that tree and the queries; per-tree
/// outputs are merged **in tree index order**, reproducing exactly the
/// serial loop's candidate append order and stats sums. The resulting
/// [`SearchOutput`] is bit-identical for every thread count.
pub fn mrkd_search_with(
    forest: &MrkdForest,
    queries: &[Vec<f32>],
    thresholds_sq: &[f32],
    conc: Concurrency,
) -> SearchOutput {
    let out = mrkd_search_with_unrecorded(forest, queries, thresholds_sq, conc);
    record_search("shared", &out.stats);
    out
}

/// [`mrkd_search_with`] without the registry record — the baseline path
/// reuses the traversal per query and must not count those inner calls as
/// shared-mode searches.
fn mrkd_search_with_unrecorded(
    forest: &MrkdForest,
    queries: &[Vec<f32>],
    thresholds_sq: &[f32],
    conc: Concurrency,
) -> SearchOutput {
    assert_eq!(queries.len(), thresholds_sq.len());
    let per_tree = par_map(conc, forest.trees(), |_, tree| {
        search_tree(forest, tree, queries, thresholds_sq)
    });
    let mut candidates = vec![Vec::new(); queries.len()];
    let mut stats = SearchStats::default();
    let mut trees = Vec::with_capacity(per_tree.len());
    for (vo, tree_candidates, tree_stats) in per_tree {
        stats.merge(&tree_stats);
        for (q, mut list) in tree_candidates.into_iter().enumerate() {
            candidates[q].append(&mut list);
        }
        trees.push(vo);
    }
    for list in &mut candidates {
        list.sort_unstable_by_key(|e| e.0);
        list.dedup_by_key(|e| e.0);
    }
    SearchOutput {
        vo: BovwVo { trees },
        candidates,
        stats,
    }
}

/// The Baseline scheme's BoVW VO: an independent `MRKDSearch` per query
/// vector (no node sharing), as used in §VII's Baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineBovwVo {
    pub per_query: Vec<BovwVo>,
}

impl Encode for BaselineBovwVo {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.per_query.len());
        for vo in &self.per_query {
            vo.encode(w);
        }
    }
}

impl Decode for BaselineBovwVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut per_query = Vec::with_capacity(n);
        for _ in 0..n {
            per_query.push(BovwVo::decode(r)?);
        }
        Ok(BaselineBovwVo { per_query })
    }
}

/// Baseline `MRKDSearch`: per-query traversals; the VOs duplicate every
/// shared node's digests, which is exactly the overhead Figs. 6–8 plot.
pub fn mrkd_search_baseline(
    forest: &MrkdForest,
    queries: &[Vec<f32>],
    thresholds_sq: &[f32],
) -> (BaselineBovwVo, Vec<Vec<(u32, f32)>>, SearchStats) {
    mrkd_search_baseline_with(forest, queries, thresholds_sq, Concurrency::serial())
}

/// [`mrkd_search_baseline`] with the independent per-query traversals fanned
/// out across workers and merged in query index order, so the VO, candidate
/// sets, and stats are bit-identical to the serial loop's.
pub fn mrkd_search_baseline_with(
    forest: &MrkdForest,
    queries: &[Vec<f32>],
    thresholds_sq: &[f32],
    conc: Concurrency,
) -> (BaselineBovwVo, Vec<Vec<(u32, f32)>>, SearchStats) {
    assert!(
        forest.mode() == CandidateMode::Full,
        "the Baseline scheme uses full candidate disclosure"
    );
    assert_eq!(queries.len(), thresholds_sq.len());
    let outs = par_map(conc, queries, |i, q| {
        mrkd_search_with_unrecorded(
            forest,
            std::slice::from_ref(q),
            &[thresholds_sq[i]],
            Concurrency::serial(),
        )
    });
    let mut per_query = Vec::with_capacity(queries.len());
    let mut candidates = Vec::with_capacity(queries.len());
    let mut stats = SearchStats::default();
    for out in outs {
        stats.merge(&out.stats);
        per_query.push(out.vo);
        candidates.push(out.candidates.into_iter().next().expect("one query"));
    }
    record_search("baseline", &stats);
    (BaselineBovwVo { per_query }, candidates, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_akm::rkd::{dist_sq, RkdForest};
    use imageproof_crypto::Digest;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const DIM: usize = 64;

    #[test]
    fn baseline_bovw_vo_roundtrips_on_the_wire() {
        let vo = BaselineBovwVo {
            per_query: vec![
                BovwVo {
                    trees: vec![VoNode::Pruned(Digest::of(b"t0"))],
                },
                BovwVo {
                    trees: vec![VoNode::Pruned(Digest::of(b"t1"))],
                },
            ],
        };
        assert_eq!(BaselineBovwVo::from_wire(&vo.to_wire()).expect("rt"), vo);
    }

    fn setup(mode: CandidateMode) -> (Vec<Vec<f32>>, MrkdForest) {
        let mut rng = StdRng::seed_from_u64(51);
        let centers: Vec<Vec<f32>> = (0..80)
            .map(|_| (0..DIM).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let inv: Vec<Digest> = (0..80u32)
            .map(|c| Digest::of(format!("inv-{c}").as_bytes()))
            .collect();
        let forest = RkdForest::build(&centers, 3, 2, 52);
        let mrkd = MrkdForest::build(&forest, &centers, &inv, mode);
        (centers, mrkd)
    }

    /// Queries are perturbed centroids — like real local features, they sit
    /// close to one visual word — with threshold = exact NN distance, as
    /// Alg. 5 line 1 computes.
    fn queries_and_thresholds(centers: &[Vec<f32>], n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(53);
        let queries: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let base = &centers[rng.gen_range(0..centers.len())];
                base.iter()
                    .map(|&v| v + rng.gen_range(-0.02f32..0.02))
                    .collect()
            })
            .collect();
        let thresholds = queries
            .iter()
            .map(|q| {
                centers
                    .iter()
                    .map(|c| dist_sq(q, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        (queries, thresholds)
    }

    #[test]
    fn candidates_contain_the_exact_nearest_cluster() {
        let (centers, mrkd) = setup(CandidateMode::Full);
        let (queries, thresholds) = queries_and_thresholds(&centers, 10);
        let out = mrkd_search(&mrkd, &queries, &thresholds);
        for (qi, q) in queries.iter().enumerate() {
            let nn = (0..centers.len() as u32)
                .min_by(|&a, &b| {
                    dist_sq(q, &centers[a as usize]).total_cmp(&dist_sq(q, &centers[b as usize]))
                })
                .expect("non-empty");
            assert!(
                out.candidates[qi].iter().any(|&(c, _)| c == nn),
                "query {qi} lost its nearest cluster"
            );
        }
    }

    #[test]
    fn shared_search_visits_fewer_nodes_than_baseline() {
        let (centers, mrkd) = setup(CandidateMode::Full);
        let (queries, thresholds) = queries_and_thresholds(&centers, 20);
        let shared = mrkd_search(&mrkd, &queries, &thresholds);
        let (_, _, baseline_stats) = mrkd_search_baseline(&mrkd, &queries, &thresholds);
        assert!(shared.stats.nodes_traversed < baseline_stats.nodes_traversed);
    }

    #[test]
    fn shared_vo_is_smaller_than_baseline_vo() {
        let (centers, mrkd) = setup(CandidateMode::Full);
        let (queries, thresholds) = queries_and_thresholds(&centers, 20);
        let shared = mrkd_search(&mrkd, &queries, &thresholds);
        let (baseline_vo, _, _) = mrkd_search_baseline(&mrkd, &queries, &thresholds);
        assert!(shared.vo.wire_size() < baseline_vo.wire_size());
    }

    #[test]
    fn compressed_vo_is_smaller_than_full_vo() {
        let (centers, full) = setup(CandidateMode::Full);
        let (_, compressed) = setup(CandidateMode::Compressed);
        let (queries, thresholds) = queries_and_thresholds(&centers, 20);
        let a = mrkd_search(&full, &queries, &thresholds);
        let b = mrkd_search(&compressed, &queries, &thresholds);
        // Same traversal shape either way.
        assert_eq!(a.stats.nodes_traversed, b.stats.nodes_traversed);
        assert!(
            b.vo.wire_size() < a.vo.wire_size(),
            "compressed {} >= full {}",
            b.vo.wire_size(),
            a.vo.wire_size()
        );
    }

    #[test]
    fn baseline_candidates_match_shared_candidates() {
        let (centers, mrkd) = setup(CandidateMode::Full);
        let (queries, thresholds) = queries_and_thresholds(&centers, 15);
        let shared = mrkd_search(&mrkd, &queries, &thresholds);
        let (_, baseline_cands, _) = mrkd_search_baseline(&mrkd, &queries, &thresholds);
        for (qi, mut solo) in baseline_cands.into_iter().enumerate() {
            solo.sort_unstable_by_key(|e| e.0);
            solo.dedup_by_key(|e| e.0);
            assert_eq!(shared.candidates[qi], solo, "query {qi}");
        }
    }

    #[test]
    fn vo_round_trips_through_wire_format() {
        for mode in [CandidateMode::Full, CandidateMode::Compressed] {
            let (centers, mrkd) = setup(mode);
            let (queries, thresholds) = queries_and_thresholds(&centers, 8);
            let out = mrkd_search(&mrkd, &queries, &thresholds);
            let bytes = out.vo.to_wire();
            let decoded = BovwVo::from_wire(&bytes).expect("round trip");
            assert_eq!(decoded, out.vo);
        }
    }

    #[test]
    fn stats_shared_ratio_is_sane() {
        let (centers, mrkd) = setup(CandidateMode::Full);
        let (queries, thresholds) = queries_and_thresholds(&centers, 30);
        let out = mrkd_search(&mrkd, &queries, &thresholds);
        let r = out.stats.shared_ratio();
        assert!((0.0..=1.0).contains(&r));
        assert!(r > 0.0, "30 queries on one tree must share the root");
    }
}
