//! Structured spans: a lightweight hierarchical profile of one operation
//! (a query, a verification, an ADS build).
//!
//! A [`Profiler`] is an explicit, single-threaded span stack — the owner of
//! the operation opens phases with [`Profiler::enter`], closes them with
//! [`Profiler::exit`] (which returns the phase's wall seconds, so existing
//! stats structs can be populated from the same measurement), attaches
//! counters to the open span, and grafts sub-profiles produced on worker
//! threads with [`Profiler::attach`]. [`Profiler::finish`] yields a
//! [`QueryProfile`]: an owned span tree that can be rendered, interrogated
//! by path, or aggregated across shards.
//!
//! ## Zero-perturbation guarantee
//!
//! Spans observe; they never participate. No digest, signature, or wire
//! byte ever depends on a span, and when recording is disabled
//! ([`crate::set_enabled`]) every operation short-circuits on one cached
//! boolean — profiles come back empty and the instrumented code path is
//! otherwise identical.

use crate::clock::Stopwatch;

/// One finished span: a named phase with its wall-clock duration, counters,
/// and child spans in open order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanRecord {
    pub name: &'static str,
    pub seconds: f64,
    /// Accumulated `(counter name, value)` pairs, deduplicated by name in
    /// first-recorded order.
    pub counters: Vec<(&'static str, u64)>,
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    fn new(name: &'static str) -> SpanRecord {
        SpanRecord {
            name,
            ..SpanRecord::default()
        }
    }

    /// The counter's value on this span (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Sums `name` over this span and every descendant.
    pub fn counter_deep(&self, name: &str) -> u64 {
        self.counter(name)
            + self
                .children
                .iter()
                .map(|c| c.counter_deep(name))
                .sum::<u64>()
    }

    fn add_counter(&mut self, name: &'static str, v: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = slot.1.saturating_add(v);
        } else {
            self.counters.push((name, v));
        }
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{} {:.3} ms", self.name, self.seconds * 1e3));
        if !self.counters.is_empty() {
            let pairs: Vec<String> = self
                .counters
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            out.push_str(&format!(" [{}]", pairs.join(" ")));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// The profile of one operation: the finished span tree, or empty when
/// recording was disabled.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryProfile {
    pub root: Option<SpanRecord>,
}

impl QueryProfile {
    /// True when recording was disabled (no spans were collected).
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Root wall seconds (0 when empty).
    pub fn total_seconds(&self) -> f64 {
        self.root.as_ref().map(|r| r.seconds).unwrap_or(0.0)
    }

    /// Wall seconds summed over every span matching `path` — a
    /// `/`-separated name chain below the root, e.g. `"bovw/mrkd.search"`.
    /// Repeated phases (one `shard.build` child per shard) sum.
    pub fn seconds(&self, path: &str) -> f64 {
        let Some(root) = &self.root else {
            return 0.0;
        };
        let mut layer: Vec<&SpanRecord> = vec![root];
        for part in path.split('/') {
            let mut next = Vec::new();
            for span in layer {
                next.extend(span.children.iter().filter(|c| c.name == part));
            }
            layer = next;
        }
        layer.iter().map(|s| s.seconds).sum()
    }

    /// Sums counter `name` over the whole tree.
    pub fn counter(&self, name: &str) -> u64 {
        self.root
            .as_ref()
            .map(|r| r.counter_deep(name))
            .unwrap_or(0)
    }

    /// The root's direct children as `(phase name, wall seconds)` — the
    /// top-level phase breakdown.
    pub fn phases(&self) -> Vec<(&'static str, f64)> {
        self.root
            .as_ref()
            .map(|r| r.children.iter().map(|c| (c.name, c.seconds)).collect())
            .unwrap_or_default()
    }

    /// An indented human-readable dump of the span tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.root {
            Some(root) => root.render_into(&mut out, 0),
            None => out.push_str("(observability disabled — empty profile)\n"),
        }
        out
    }
}

/// A span-stack profiler for one operation (see the module docs).
#[derive(Debug)]
pub struct Profiler {
    /// Cached at construction so one operation is profiled consistently
    /// even if the global switch flips mid-flight.
    enabled: bool,
    stack: Vec<(SpanRecord, Stopwatch)>,
}

impl Profiler {
    /// Opens the root span `name`; recording follows the global
    /// [`crate::enabled`] switch.
    pub fn new(name: &'static str) -> Profiler {
        Profiler::with_enabled(name, crate::enabled())
    }

    /// A profiler that records nothing and returns an empty profile.
    pub fn disabled() -> Profiler {
        Profiler::with_enabled("", false)
    }

    fn with_enabled(name: &'static str, enabled: bool) -> Profiler {
        let mut stack = Vec::new();
        if enabled {
            stack.push((SpanRecord::new(name), Stopwatch::start()));
        }
        Profiler { enabled, stack }
    }

    /// True when this profiler is collecting spans.
    pub fn is_recording(&self) -> bool {
        self.enabled
    }

    /// Opens a child span under the current one.
    pub fn enter(&mut self, name: &'static str) {
        if self.enabled {
            self.stack.push((SpanRecord::new(name), Stopwatch::start()));
        }
    }

    /// Closes the current span and returns its wall seconds (0 when
    /// disabled, or when only the root remains — the root closes in
    /// [`Profiler::finish`]).
    pub fn exit(&mut self) -> f64 {
        if !self.enabled || self.stack.len() <= 1 {
            return 0.0;
        }
        let Some((mut span, watch)) = self.stack.pop() else {
            return 0.0;
        };
        span.seconds = watch.elapsed_seconds();
        let seconds = span.seconds;
        if let Some((parent, _)) = self.stack.last_mut() {
            parent.children.push(span);
        }
        seconds
    }

    /// Adds `v` to counter `name` on the current span (saturating).
    pub fn add(&mut self, name: &'static str, v: u64) {
        if self.enabled {
            if let Some((span, _)) = self.stack.last_mut() {
                span.add_counter(name, v);
            }
        }
    }

    /// Grafts a finished sub-profile (e.g. one produced on a worker
    /// thread, or by a per-shard engine) as a child of the current span,
    /// tagging its root with counter `tag = tag_value`.
    pub fn attach(&mut self, child: QueryProfile, tag: &'static str, tag_value: u64) {
        if !self.enabled {
            return;
        }
        let Some(mut root) = child.root else {
            return;
        };
        root.add_counter(tag, tag_value);
        if let Some((span, _)) = self.stack.last_mut() {
            span.children.push(root);
        }
    }

    /// Closes every open span (root last) and returns the profile.
    pub fn finish(mut self) -> QueryProfile {
        if !self.enabled {
            return QueryProfile::default();
        }
        while self.stack.len() > 1 {
            self.exit();
        }
        let root = self.stack.pop().map(|(mut span, watch)| {
            span.seconds = watch.elapsed_seconds();
            span
        });
        QueryProfile { root }
    }
}

/// Times `$body` under a span named `$name` on profiler `$prof`.
///
/// `$body` must not early-return (`?`/`return`) or the span would stay
/// open; use explicit [`Profiler::enter`]/[`Profiler::exit`] around
/// fallible code.
#[macro_export]
macro_rules! span {
    ($prof:expr, $name:expr, $body:expr) => {{
        $prof.enter($name);
        let result = $body;
        $prof.exit();
        result
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_nest_and_expose_paths() {
        let mut prof = Profiler::with_enabled("op", true);
        prof.enter("a");
        prof.enter("inner");
        prof.add("items", 3);
        prof.add("items", 4);
        prof.exit();
        prof.exit();
        prof.enter("b");
        prof.exit();
        let profile = prof.finish();
        assert!(!profile.is_empty());
        assert_eq!(
            profile.phases().iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(profile.counter("items"), 7);
        assert!(profile.seconds("a/inner") >= 0.0);
        assert!(profile.total_seconds() >= profile.seconds("a"));
        let text = profile.render();
        assert!(text.contains("op"), "{text}");
        assert!(text.contains("items=7"), "{text}");
    }

    #[test]
    fn disabled_profiler_is_a_no_op() {
        let mut prof = Profiler::disabled();
        prof.enter("a");
        prof.add("n", 1);
        assert_eq!(prof.exit(), 0.0);
        let profile = prof.finish();
        assert!(profile.is_empty());
        assert_eq!(profile.total_seconds(), 0.0);
        assert_eq!(profile.counter("n"), 0);
        assert_eq!(profile.phases(), Vec::<(&'static str, f64)>::new());
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let mut prof = Profiler::with_enabled("op", true);
        prof.enter("left-open");
        prof.enter("also-open");
        let profile = prof.finish();
        let root = profile.root.expect("enabled profile has a root");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].children.len(), 1);
    }

    #[test]
    fn attach_grafts_subtrees_with_a_tag() {
        let mut shard = Profiler::with_enabled("sp.query", true);
        shard.enter("bovw");
        shard.add("hashes", 5);
        shard.exit();
        let shard_profile = shard.finish();

        let mut top = Profiler::with_enabled("sharded.query", true);
        top.enter("fanout");
        top.attach(shard_profile, "shard", 2);
        top.attach(QueryProfile::default(), "shard", 3); // empty: ignored
        top.exit();
        let profile = top.finish();
        assert_eq!(profile.counter("hashes"), 5);
        assert_eq!(profile.counter("shard"), 2);
        assert!(profile.seconds("fanout/sp.query/bovw") >= 0.0);
    }

    #[test]
    fn span_macro_times_a_block() {
        let mut prof = Profiler::with_enabled("op", true);
        let v = crate::span!(prof, "compute", { 40 + 2 });
        assert_eq!(v, 42);
        let profile = prof.finish();
        assert_eq!(profile.phases().len(), 1);
    }
}
