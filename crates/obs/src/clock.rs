//! The workspace's only legal wall clock.
//!
//! The `imageproof-audit` determinism rule bans `Instant` and `SystemTime`
//! outside this crate: wall-clock readings near digest or wire code are a
//! reproducibility hazard, so every timing in the workspace goes through
//! [`Stopwatch`] (or the span layer built on it). A `Stopwatch` is pure
//! measurement — it never feeds a digest, never serializes, and reading it
//! cannot perturb any authenticated byte.

use std::time::Instant;

/// A monotonic stopwatch wrapping [`Instant`].
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts (or restarts) measuring from now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Nanoseconds elapsed, saturated to `u64::MAX` (584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Reads the elapsed seconds and restarts the stopwatch in one step —
    /// for consecutive phase timings without gaps.
    pub fn lap(&mut self) -> f64 {
        let seconds = self.elapsed_seconds();
        self.start = Instant::now();
        seconds
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::Stopwatch;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_seconds();
        let b = sw.elapsed_seconds();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!(sw.elapsed_nanos() < u64::MAX);
    }

    #[test]
    fn lap_resets_the_origin() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let first = sw.lap();
        assert!(first > 0.0);
        // Immediately after a lap the elapsed time starts from ~zero again.
        assert!(sw.elapsed_seconds() < first + 1.0);
    }
}
