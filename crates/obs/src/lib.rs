//! # imageproof-obs
//!
//! The workspace's unified observability layer: a lock-free labeled
//! metrics registry ([`Registry`]), structured hierarchical spans
//! ([`Profiler`] → [`QueryProfile`]), and the only legal wall clock
//! ([`Stopwatch`]) — `imageproof-audit` bans `Instant`/`SystemTime`
//! everywhere else in the workspace.
//!
//! ## Design rules
//!
//! * **Zero perturbation.** Observability never touches digests, scores,
//!   or wire bytes. The `obs_equivalence` integration suite proves VOs are
//!   byte-identical with recording enabled vs. disabled across every
//!   scheme and thread count.
//! * **Lock-free recording.** Metric handles are atomics; the only lock is
//!   the registration path (`parking_lot`), so recording is safe and cheap
//!   under the `imageproof-parallel` pool.
//! * **Runtime switch.** [`set_enabled`]`(false)` turns span collection
//!   and registry recording into near-no-ops (one relaxed atomic load at
//!   each instrumentation site); the default is enabled.
//! * **Deterministic exposition.** Prometheus-text and JSON renderings are
//!   byte-stable for a given set of metric values, independent of
//!   registration order or thread interleaving.

pub mod clock;
pub mod events;
pub mod metrics;
pub mod scrape;
pub mod span;

pub use clock::Stopwatch;
pub use events::{Event, EventKind, EventLog, EVENT_KINDS};
pub use metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, snapshot_json, snapshot_prometheus_text,
    Counter, Gauge, Histogram, HistogramSnapshot, MetricId, Registry, RegistrySnapshot, SloTracker,
    WindowedHistogram, HISTOGRAM_BUCKETS,
};
pub use scrape::{http_get, launch_scrape, RunningScrape, ScrapeProvider};
pub use span::{Profiler, QueryProfile, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Whether observability recording is on (the default). Instrumentation
/// sites check this once per operation; profilers cache it at
/// construction.
pub fn enabled() -> bool {
    // audit:allow(relaxed) lone on/off flag: no other memory is published through it, and stale reads only delay the toggle
    ENABLED.load(Ordering::Relaxed)
}

/// Flips the global recording switch. Disabling makes span collection and
/// registry recording near-no-ops; it never changes any authenticated
/// byte (see the crate docs' zero-perturbation rule).
pub fn set_enabled(on: bool) {
    // audit:allow(relaxed) lone on/off flag: no other memory is published through it, and stale reads only delay the toggle
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry that library instrumentation records into.
/// Exposition: [`Registry::prometheus_text`] / [`Registry::json`].
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Converts spans' fractional seconds to the integer microseconds the
/// histograms record (saturating; sub-microsecond phases record 0).
pub fn micros(seconds: f64) -> u64 {
    let micros = seconds * 1e6;
    if micros >= u64::MAX as f64 {
        u64::MAX
    } else if micros.is_sign_negative() || micros.is_nan() {
        0
    } else {
        micros as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_conversion_is_total() {
        assert_eq!(micros(0.0), 0);
        assert_eq!(micros(-1.0), 0);
        assert_eq!(micros(f64::NAN), 0);
        assert_eq!(micros(1.5e-6), 1);
        assert_eq!(micros(2.0), 2_000_000);
        assert_eq!(micros(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs_selftest_total", &[]).inc();
        assert!(global().counter("obs_selftest_total", &[]).get() >= 1);
    }
}
