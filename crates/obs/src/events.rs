//! A bounded structured event log for the serving plane.
//!
//! Queries are high-rate and belong in metrics; *events* are the rare,
//! individually interesting transitions — a failover, a timed-out shard, a
//! query over the slow threshold, a manifest-pinned hello re-verification
//! — that an operator wants to read back verbatim. The log is a
//! fixed-capacity ring: recording is O(1), memory is bounded no matter how
//! badly the fleet misbehaves, and when the ring wraps the *oldest* events
//! are dropped while a cumulative per-kind counter keeps the totals
//! honest. Exposition is JSON-lines (one object per line) at the scrape
//! server's `/events` route.
//!
//! Timestamps are seconds since the log's construction, read from the
//! workspace [`Stopwatch`] — the only legal clock — so the log never
//! touches `SystemTime` and stays deterministic under the explicit-time
//! test entry points.

use crate::Stopwatch;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// The typed cause of an event. Every recordable condition in the serving
/// plane maps to exactly one kind; free-text detail rides alongside in
/// [`Event::detail`], never instead of the type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A shard endpoint was abandoned and its replica promoted.
    Failover,
    /// A shard missed a per-request or heartbeat deadline.
    Timeout,
    /// A query exceeded the slow-query threshold.
    SlowQuery,
    /// A hello was re-verified against the owner-signed manifest pin
    /// (connect, reconnect, or failover); detail says whether it held.
    HelloReverify,
    /// A shard's aggregated health state changed (healthy ↔ degraded ↔
    /// dead).
    HealthTransition,
    /// A malformed or oversized frame reached a server.
    WireError,
}

/// All kinds, in exposition order.
pub const EVENT_KINDS: [EventKind; 6] = [
    EventKind::Failover,
    EventKind::Timeout,
    EventKind::SlowQuery,
    EventKind::HelloReverify,
    EventKind::HealthTransition,
    EventKind::WireError,
];

impl EventKind {
    /// The stable wire/exposition name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Failover => "failover",
            EventKind::Timeout => "timeout",
            EventKind::SlowQuery => "slow_query",
            EventKind::HelloReverify => "hello_reverify",
            EventKind::HealthTransition => "health_transition",
            EventKind::WireError => "wire_error",
        }
    }

    fn index(self) -> usize {
        match self {
            EventKind::Failover => 0,
            EventKind::Timeout => 1,
            EventKind::SlowQuery => 2,
            EventKind::HelloReverify => 3,
            EventKind::HealthTransition => 4,
            EventKind::WireError => 5,
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (gaps reveal ring overwrites).
    pub seq: u64,
    /// Seconds since the log was constructed.
    pub t_seconds: f64,
    pub kind: EventKind,
    /// The shard the event concerns, when there is one.
    pub shard: Option<u32>,
    /// Free-text detail; escaped on exposition.
    pub detail: String,
}

impl Event {
    /// One JSON object, no trailing newline.
    pub fn json(&self) -> String {
        let shard = match self.shard {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"seq\":{},\"t_seconds\":{:.6},\"kind\":\"{}\",\"shard\":{},\"detail\":\"{}\"}}",
            self.seq,
            self.t_seconds,
            self.kind.name(),
            shard,
            json_escape(&self.detail)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The fixed-capacity ring. Recording takes the ring mutex for a push and
/// possible pop-front — no allocation beyond the event's own detail
/// string; readers copy the ring out under the same lock.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    clock: Stopwatch,
    ring: Mutex<VecDeque<Event>>,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    by_kind: [AtomicU64; EVENT_KINDS.len()],
}

impl EventLog {
    /// A log retaining at most `capacity` events (clamped to at least 1).
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            capacity: capacity.max(1),
            clock: Stopwatch::start(),
            ring: Mutex::new(VecDeque::new()),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            by_kind: Default::default(),
        }
    }

    /// Records one event at the log's own clock and returns its sequence
    /// number.
    pub fn record(&self, kind: EventKind, shard: Option<u32>, detail: impl Into<String>) -> u64 {
        self.record_at(self.clock.elapsed_seconds(), kind, shard, detail)
    }

    /// [`EventLog::record`] at an explicit instant (deterministic tests).
    pub fn record_at(
        &self,
        t_seconds: f64,
        kind: EventKind,
        shard: Option<u32>,
        detail: impl Into<String>,
    ) -> u64 {
        // audit:allow(relaxed) monotonic sequence counter: ring contents are published via the mutex, not this atomic
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // audit:allow(relaxed, panic) monotonic statistics counter: readers tolerate lag; kind.index() enumerates a closed enum and by_kind is sized to EVENT_KINDS.len()
        self.by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            t_seconds,
            kind,
            shard,
            detail: detail.into(),
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            // audit:allow(relaxed) monotonic statistics counter: readers tolerate lag
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
        seq
    }

    /// Cumulative count of `kind` events since construction — unaffected
    /// by ring overwrites.
    pub fn count(&self, kind: EventKind) -> u64 {
        // audit:allow(relaxed, panic) statistics read: a momentarily stale total is acceptable for exposition; kind.index() enumerates a closed enum and by_kind is sized to EVENT_KINDS.len()
        self.by_kind[kind.index()].load(Ordering::Relaxed)
    }

    /// Events evicted by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        // audit:allow(relaxed) statistics read: a momentarily stale total is acceptable for exposition
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events ever recorded.
    pub fn total(&self) -> u64 {
        // audit:allow(relaxed) statistics read: a momentarily stale total is acceptable for exposition
        self.next_seq.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }

    /// JSON-lines exposition: one object per retained event, oldest
    /// first, each line newline-terminated.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&e.json());
            out.push('\n');
        }
        out
    }

    /// `{"failover": n, …}` cumulative per-kind counts in stable order —
    /// the summary fig16 embeds per record.
    pub fn counts_json(&self) -> String {
        let fields: Vec<String> = EVENT_KINDS
            .iter()
            .map(|&k| format!("\"{}\": {}", k.name(), self.count(k)))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let log = EventLog::new(3);
        for i in 0..5u32 {
            log.record_at(i as f64, EventKind::Timeout, Some(i), format!("t{i}"));
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two were evicted");
        assert_eq!(events[2].seq, 4);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.total(), 5);
        assert_eq!(
            log.count(EventKind::Timeout),
            5,
            "counters survive eviction"
        );
        assert_eq!(log.count(EventKind::Failover), 0);
    }

    #[test]
    fn jsonl_is_one_escaped_object_per_line() {
        let log = EventLog::new(8);
        log.record_at(
            0.5,
            EventKind::Failover,
            Some(1),
            "primary \"gone\"\nreplica up",
        );
        log.record_at(1.0, EventKind::HelloReverify, None, "pin ok");
        let jsonl = log.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"t_seconds\":0.500000,\"kind\":\"failover\",\"shard\":1,\"detail\":\"primary \\\"gone\\\"\\nreplica up\"}"
        );
        assert!(lines[1].contains("\"shard\":null"));
        assert_eq!(
            log.counts_json(),
            "{\"failover\": 1, \"timeout\": 0, \"slow_query\": 0, \"hello_reverify\": 1, \"health_transition\": 0, \"wire_error\": 0}"
        );
    }

    #[test]
    fn kinds_roundtrip_names_and_indices() {
        for (i, &k) in EVENT_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }
}
