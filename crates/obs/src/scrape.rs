//! A dependency-free HTTP-lite scrape server.
//!
//! Serving-plane observability needs a pull endpoint an operator (or
//! `imageproof-obstop`) can hit while the fleet is live, without dragging
//! an HTTP framework into the workspace. This module speaks just enough
//! HTTP/1.0 for a scraper: it answers `GET` on four fixed routes and
//! closes the connection after each response.
//!
//! | route           | body                                        |
//! |-----------------|---------------------------------------------|
//! | `/metrics`      | byte-stable Prometheus text exposition      |
//! | `/metrics.json` | byte-stable JSON exposition                 |
//! | `/healthz`      | provider-defined health JSON                |
//! | `/events`       | JSON-lines event log                        |
//!
//! Socket discipline mirrors `rpc/server.rs`: a nonblocking accept loop
//! polling a stop flag, one short-lived thread per connection with a
//! bounded read (requests over [`MAX_REQUEST_BYTES`] are rejected before
//! buffering more), and a prompt shutdown that joins every thread. The
//! server only ever *reads* snapshots from its [`ScrapeProvider`] — it
//! can never block a query, and the zero-perturbation suite proves
//! payload bytes are identical with scraping on or off.

use crate::metrics::{snapshot_json, snapshot_prometheus_text, RegistrySnapshot};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection thread blocks in `read` before re-checking the
/// stop flag (same cadence as the RPC server).
const READ_POLL: Duration = Duration::from_millis(25);

/// Upper bound on a scrape request's header bytes; anything larger is not
/// a scraper and earns `431` + close before the buffer grows further.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a connection may idle mid-request before the server gives up
/// on it.
const REQUEST_DEADLINE_SECONDS: f64 = 5.0;

/// What a scrape endpoint exposes. Implementations return point-in-time
/// copies — the server holds no locks of the caller's while rendering.
pub trait ScrapeProvider: Send + Sync {
    /// Body served at `/healthz` (a JSON object; shape is the provider's).
    fn healthz_json(&self) -> String;
    /// Snapshot rendered at `/metrics` (Prometheus text) and
    /// `/metrics.json` (JSON).
    fn registry_snapshot(&self) -> RegistrySnapshot;
    /// JSON-lines body served at `/events`.
    fn events_jsonl(&self) -> String;
}

/// Handle to a spawned scrape server: bound address plus a shutdown
/// switch that joins every thread.
pub struct RunningScrape {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl RunningScrape {
    /// The address the server accepted on (port picked by the OS when the
    /// bind address asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every server thread to stop and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningScrape {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `bind_addr` (e.g. `127.0.0.1:0` for an OS-picked port) and
/// serves the provider's routes until [`RunningScrape::shutdown`].
pub fn launch_scrape(
    provider: Arc<dyn ScrapeProvider>,
    bind_addr: &str,
) -> std::io::Result<RunningScrape> {
    let listener = TcpListener::bind(bind_addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_handle = std::thread::spawn(move || accept_loop(listener, provider, accept_stop));
    Ok(RunningScrape {
        addr,
        stop,
        accept_handle: Some(accept_handle),
    })
}

fn accept_loop(listener: TcpListener, provider: Arc<dyn ScrapeProvider>, stop: Arc<AtomicBool>) {
    let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let provider = Arc::clone(&provider);
                let conn_stop = Arc::clone(&stop);
                conn_handles.push(std::thread::spawn(move || {
                    serve_connection(stream, provider, conn_stop);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

/// Reads one request, answers it, closes. HTTP/1.0 semantics keep the
/// server trivially stateless.
fn serve_connection(
    mut stream: TcpStream,
    provider: Arc<dyn ScrapeProvider>,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let deadline = crate::Stopwatch::start();
    let mut request = Vec::new();
    let mut buf = [0u8; 1024];
    let header_end = loop {
        if stop.load(Ordering::SeqCst) || deadline.elapsed_seconds() > REQUEST_DEADLINE_SECONDS {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                request.extend_from_slice(&buf[..n]);
                if let Some(end) = find_header_end(&request) {
                    break end;
                }
                if request.len() > MAX_REQUEST_BYTES {
                    let _ = respond(&mut stream, 431, "text/plain", "request header too large\n");
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    };
    let head = String::from_utf8_lossy(&request[..header_end]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        let _ = respond(&mut stream, 405, "text/plain", "method not allowed\n");
        return;
    }
    // Ignore any query string: routes are fixed.
    let path = target.split('?').next().unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4",
            snapshot_prometheus_text(&provider.registry_snapshot()),
        ),
        "/metrics.json" => (
            200,
            "application/json",
            snapshot_json(&provider.registry_snapshot()),
        ),
        "/healthz" => (200, "application/json", provider.healthz_json()),
        "/events" => (200, "application/jsonl", provider.events_jsonl()),
        _ => (404, "text/plain", "not found\n".to_string()),
    };
    let _ = respond(&mut stream, status, content_type, &body);
}

/// Position one past the `\r\n\r\n` (or bare `\n\n`) terminating the
/// request head, if it has arrived.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A minimal blocking HTTP GET against a scrape endpoint: returns
/// `(status, body)`. Shared by `imageproof-obstop`, the bench harness,
/// and the CI smoke test so nobody grows their own client.
pub fn http_get(addr: &str, path: &str, timeout_seconds: f64) -> std::io::Result<(u16, String)> {
    let timeout = Duration::from_secs_f64(timeout_seconds.clamp(0.05, 600.0));
    let sock_addr: SocketAddr = addr.parse().map_err(|e| {
        std::io::Error::new(ErrorKind::InvalidInput, format!("bad addr {addr}: {e}"))
    })?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let _ = stream.set_nodelay(true);
    let request = format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let deadline = crate::Stopwatch::start();
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        if deadline.elapsed_seconds() > timeout.as_secs_f64() {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                "scrape response deadline exceeded",
            ));
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let header_end = find_header_end(&response).ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidData, "response missing header terminator")
    })?;
    let head = String::from_utf8_lossy(&response[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "response missing status"))?;
    let body = String::from_utf8_lossy(&response[header_end..]).to_string();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    struct TestProvider {
        registry: Registry,
        events: crate::events::EventLog,
    }

    impl ScrapeProvider for TestProvider {
        fn healthz_json(&self) -> String {
            "{\"status\":\"healthy\",\"role\":\"test\"}".to_string()
        }
        fn registry_snapshot(&self) -> RegistrySnapshot {
            self.registry.snapshot()
        }
        fn events_jsonl(&self) -> String {
            self.events.jsonl()
        }
    }

    fn provider() -> Arc<TestProvider> {
        let registry = Registry::new();
        registry
            .counter("scrape_test_total", &[("route", "q")])
            .add(7);
        registry.histogram("scrape_test_micros", &[]).record(1500);
        let events = crate::events::EventLog::new(8);
        events.record_at(0.25, crate::events::EventKind::SlowQuery, Some(0), "1.5ms");
        Arc::new(TestProvider { registry, events })
    }

    #[test]
    fn serves_all_routes_with_correct_bodies() {
        let p = provider();
        let server = launch_scrape(p.clone(), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();

        let (status, text) = http_get(&addr, "/metrics", 5.0).unwrap();
        assert_eq!(status, 200);
        assert_eq!(text, snapshot_prometheus_text(&p.registry.snapshot()));
        assert!(text.contains("scrape_test_total{route=\"q\"} 7\n"));

        let (status, json) = http_get(&addr, "/metrics.json", 5.0).unwrap();
        assert_eq!(status, 200);
        assert_eq!(json, snapshot_json(&p.registry.snapshot()));

        let (status, health) = http_get(&addr, "/healthz", 5.0).unwrap();
        assert_eq!(status, 200);
        assert_eq!(health, "{\"status\":\"healthy\",\"role\":\"test\"}");

        let (status, events) = http_get(&addr, "/events", 5.0).unwrap();
        assert_eq!(status, 200);
        assert!(events.contains("\"kind\":\"slow_query\""));

        let (status, _) = http_get(&addr, "/nope", 5.0).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn rejects_non_get_and_oversized_requests() {
        let server = launch_scrape(provider(), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.0 405"), "{out}");

        let mut s = TcpStream::connect(addr).unwrap();
        let junk = vec![b'x'; MAX_REQUEST_BYTES + 1024];
        s.write_all(&junk).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.0 431"), "{out}");
        server.shutdown();
    }

    #[test]
    fn concurrent_scrapes_do_not_interfere() {
        let p = provider();
        let server = launch_scrape(p.clone(), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let expected = snapshot_prometheus_text(&p.registry.snapshot());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let (status, body) = http_get(&addr, "/metrics", 5.0).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(body, expected);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
