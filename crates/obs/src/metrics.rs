//! Lock-free metric primitives and the labeled registry.
//!
//! Recording is always a handful of relaxed atomic operations on a
//! pre-registered metric handle — safe to call from every worker of the
//! `imageproof-parallel` thread pool with no lock contention. The only
//! locking happens at *registration* time (get-or-create of a labeled
//! family member) behind a `parking_lot::Mutex`, and callers are expected
//! to hold on to the returned `Arc` handle on hot paths.
//!
//! Exposition is deterministic: metrics live in `BTreeMap`s keyed by
//! `(name, sorted labels)`, so the Prometheus-text and JSON renderings are
//! byte-stable regardless of registration order or thread interleaving.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// Increments wrap on `u64` overflow (the atomic's native behavior); the
/// exposition layer never saturates or clamps, so a wrapped counter is
/// visible as a small value rather than a silently pinned `u64::MAX`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, wrapping on overflow.
    // audit:allow(relaxed) monotonic statistics counter: readers tolerate lag; no other memory is published through it
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    // audit:allow(relaxed) statistics read: a momentarily stale total is acceptable for exposition
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    // audit:allow(relaxed) gauge cell: each update is a single atomic RMW/store; no other memory is published through it
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    // audit:allow(relaxed) gauge cell: each update is a single atomic RMW; no other memory is published through it
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    // audit:allow(relaxed) gauge cell: each update is a single atomic RMW; no other memory is published through it
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    // audit:allow(relaxed) statistics read: a momentarily stale value is acceptable for exposition
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave (2 bits → 4 sub-buckets, ≤ 25 %
/// relative bucket width).
const SUB_BITS: u32 = 2;
const SUBS: u64 = 1 << SUB_BITS;

/// Total log-linear buckets covering the full `u64` range: the linear
/// region `0..SUBS` plus `SUBS` buckets for each octave `2..=63`.
pub const HISTOGRAM_BUCKETS: usize = (SUBS as usize) * 63;

/// Bucket index of `v` in the log-linear layout: values below `SUBS` get
/// their own bucket; larger values split each power-of-two octave into
/// `SUBS` linear sub-buckets.
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) & (SUBS - 1);
    ((msb - 1) as u64 * SUBS + sub) as usize
}

/// Smallest value that lands in bucket `index` (inverse of
/// [`bucket_index`]).
pub fn bucket_lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBS {
        return index;
    }
    let octave = index / SUBS + 1;
    let sub = index % SUBS;
    (SUBS + sub) << (octave - SUB_BITS as u64)
}

/// Largest value that lands in bucket `index` (inclusive).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

/// A lock-free log-linear histogram over `u64` samples (durations in
/// micro- or nanoseconds, byte sizes, counts). Recording touches three
/// relaxed atomics; quantile reads walk the bucket array.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples (used by snapshot restoration and
    /// batched recording). The running sum wraps on overflow, like
    /// [`Counter::add`].
    // audit:allow(relaxed) independent statistics cells: readers accept an inconsistent cut (see snapshot)
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
    }

    // audit:allow(relaxed) statistics read: a momentarily stale count is acceptable for exposition
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    // audit:allow(relaxed) statistics read: a momentarily stale sum is acceptable for exposition
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`q` clamped to `[0, 1]`); `None` when the histogram is empty — an
    /// empty window has no quantiles, and reporting 0 would read as a
    /// perfect latency. The estimate errs high by at most one bucket
    /// width (≤ 25 %).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// Zeroes every cell. Used by the sliding window when a bucket ages
    /// out; under concurrent recording a sample may land in a cell that
    /// was already cleared (or survive the sweep), which is the same
    /// statistics-grade tolerance as [`Histogram::snapshot`].
    // audit:allow(relaxed) independent statistics cells: readers accept an inconsistent cut (see snapshot)
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy. Under concurrent recording the per-bucket
    /// counts are each atomically read but the set is not a consistent
    /// cut; once recording quiesces, the snapshot is exact.
    // audit:allow(relaxed) documented inconsistent cut: each bucket read is atomic, the set need not be
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Frozen histogram state: `(inclusive upper bound, count)` for every
/// non-empty bucket, in ascending bound order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`]: `None` on an empty snapshot, never 0
    /// masquerading as a perfect quantile.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return Some(upper);
            }
        }
        self.buckets.last().map(|&(upper, _)| upper)
    }

    /// Folds another snapshot into this one (bucket-wise sum, merged in
    /// ascending bound order). Used to merge the two halves of a sliding
    /// window into one full-window view.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
        for &(upper, n) in self.buckets.iter().chain(other.buckets.iter()) {
            let cell = buckets.entry(upper).or_insert(0);
            *cell = cell.saturating_add(n);
        }
        HistogramSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
            buckets: buckets.into_iter().collect(),
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The identity of one registered metric: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",…}` in Prometheus notation (bare `name` when
    /// unlabeled).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
            .collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }

    fn render_with(&self, extra: (&str, String)) -> String {
        let mut id = self.clone();
        id.labels.push((extra.0.to_string(), extra.1));
        id.labels.sort();
        id.render()
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote, and line-feed (in that order, so the escape
/// character itself is escaped first). A raw `\n` would otherwise split
/// one sample line in two and corrupt the whole scrape.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Frozen registry state, used for exposition tests and transfer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<MetricId, u64>,
    pub gauges: BTreeMap<MetricId, i64>,
    pub histograms: BTreeMap<MetricId, HistogramSnapshot>,
}

/// The labeled metric registry.
///
/// `counter`/`gauge`/`histogram` get-or-register a family member under a
/// short `parking_lot` lock and hand back an `Arc` whose recording methods
/// are lock-free. Exposition walks the `BTreeMap`s, so output order is
/// deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<MetricId, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricId, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter `name{labels}`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        self.counters
            .lock()
            .entry(id)
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The gauge `name{labels}`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        self.gauges
            .lock()
            .entry(id)
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The histogram `name{labels}`, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        self.histograms
            .lock()
            .entry(id)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Drops every registered metric (test isolation; existing handles keep
    /// working but are no longer exposed).
    pub fn clear(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(id, c)| (id.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(id, g)| (id.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Rebuilds a registry from a snapshot: counters and gauges restore
    /// exactly; histograms restore bucket-exactly (each bucket's count at
    /// its upper bound, which [`bucket_index`] maps back to the same
    /// bucket) with the recorded sum preserved. Round-tripping
    /// `snapshot → restore → prometheus_text/json` is byte-identical for
    /// counters and gauges and bucket-identical for histograms.
    pub fn restore(snapshot: &RegistrySnapshot) -> Registry {
        let reg = Registry::new();
        for (id, &v) in &snapshot.counters {
            reg.counter_by_id(id).add(v);
        }
        for (id, &v) in &snapshot.gauges {
            reg.gauge_by_id(id).set(v);
        }
        for (id, h) in &snapshot.histograms {
            let handle = reg.histogram_by_id(id);
            for &(upper, n) in &h.buckets {
                handle.record_n(upper, n);
            }
            // Overwrite the sum with the recorded one (bucket upper bounds
            // overestimate the true sum).
            let over = handle.sum();
            let correction = over.wrapping_sub(h.sum);
            // audit:allow(relaxed) restoration runs on the freshly built registry before it is shared
            handle.sum.fetch_sub(correction, Ordering::Relaxed);
        }
        reg
    }

    fn counter_by_id(&self, id: &MetricId) -> Arc<Counter> {
        self.counters
            .lock()
            .entry(id.clone())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    fn gauge_by_id(&self, id: &MetricId) -> Arc<Gauge> {
        self.gauges
            .lock()
            .entry(id.clone())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    fn histogram_by_id(&self, id: &MetricId) -> Arc<Histogram> {
        self.histograms
            .lock()
            .entry(id.clone())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Prometheus text exposition (`# TYPE` headers, cumulative `_bucket`
    /// series with `le` bounds, `_sum`/`_count`). Deterministic byte-for-
    /// byte given the same metric values.
    pub fn prometheus_text(&self) -> String {
        snapshot_prometheus_text(&self.snapshot())
    }

    /// JSON exposition: one object with sorted `counters`, `gauges`, and
    /// `histograms` (each histogram carries count, sum, p50/p90/p99 and
    /// its non-empty buckets). Deterministic byte-for-byte.
    pub fn json(&self) -> String {
        snapshot_json(&self.snapshot())
    }
}

/// [`Registry::prometheus_text`] over an explicit snapshot.
pub fn snapshot_prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_type_header = String::new();
    let mut type_header = |out: &mut String, name: &str, kind: &str| {
        let header = format!("# TYPE {name} {kind}\n");
        if header != last_type_header {
            out.push_str(&header);
            last_type_header = header;
        }
    };
    for (id, v) in &snap.counters {
        type_header(&mut out, &id.name, "counter");
        out.push_str(&format!("{} {v}\n", id.render()));
    }
    for (id, v) in &snap.gauges {
        type_header(&mut out, &id.name, "gauge");
        out.push_str(&format!("{} {v}\n", id.render()));
    }
    for (id, h) in &snap.histograms {
        type_header(&mut out, &id.name, "histogram");
        let mut cumulative = 0u64;
        for &(upper, n) in &h.buckets {
            cumulative = cumulative.saturating_add(n);
            let series = MetricId {
                name: format!("{}_bucket", id.name),
                labels: id.labels.clone(),
            };
            out.push_str(&format!(
                "{} {cumulative}\n",
                series.render_with(("le", upper.to_string()))
            ));
        }
        let series = MetricId {
            name: format!("{}_bucket", id.name),
            labels: id.labels.clone(),
        };
        out.push_str(&format!(
            "{} {}\n",
            series.render_with(("le", "+Inf".to_string())),
            h.count
        ));
        out.push_str(&format!(
            "{} {}\n",
            MetricId {
                name: format!("{}_sum", id.name),
                labels: id.labels.clone(),
            }
            .render(),
            h.sum
        ));
        out.push_str(&format!(
            "{} {}\n",
            MetricId {
                name: format!("{}_count", id.name),
                labels: id.labels.clone(),
            }
            .render(),
            h.count
        ));
    }
    out
}

/// [`Registry::json`] over an explicit snapshot.
pub fn snapshot_json(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    push_scalar_map(
        &mut out,
        snap.counters.iter().map(|(id, v)| (id, *v as i128)),
    );
    out.push_str("},\n  \"gauges\": {");
    push_scalar_map(&mut out, snap.gauges.iter().map(|(id, v)| (id, *v as i128)));
    out.push_str("},\n  \"histograms\": {");
    let mut first = true;
    for (id, h) in &snap.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|&(upper, n)| format!("[{upper},{n}]"))
            .collect();
        let q = |q: f64| match h.quantile(q) {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
            escape(&id.render()),
            h.count,
            h.sum,
            q(0.50),
            q(0.90),
            q(0.99),
            buckets.join(",")
        ));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

fn push_scalar_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a MetricId, i128)>) {
    let mut first = true;
    for (id, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {v}", escape(&id.render())));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// A sliding window over the log-linear [`Histogram`], built from two
/// half-window buckets that rotate as time advances.
///
/// Samples land in the half covering the current half-window epoch; a
/// windowed read merges both halves, so it always covers between one and
/// two half-windows of history (`window_seconds / 2` worst case,
/// `window_seconds` best case) — the classic two-bucket approximation of
/// a true sliding window, with none of the per-sample timestamping cost.
/// Rotation zeroes the half that aged out; like every other read path
/// here, concurrent recording is statistics-grade (a sample racing a
/// rotation may land in a freshly cleared half or be swept with it).
///
/// Every method has an `_at(now_seconds, …)` twin taking explicit time so
/// tests and replays stay deterministic; the plain forms read the
/// tracker's own [`Stopwatch`].
#[derive(Debug)]
pub struct WindowedHistogram {
    half_seconds: f64,
    clock: crate::Stopwatch,
    halves: [Histogram; 2],
    epoch: AtomicU64,
}

impl WindowedHistogram {
    /// A window retaining between `window_seconds / 2` and
    /// `window_seconds` of samples (clamped below at 2 ms total).
    pub fn new(window_seconds: f64) -> WindowedHistogram {
        let window = if window_seconds.is_finite() {
            window_seconds.max(2e-3)
        } else {
            2e-3
        };
        WindowedHistogram {
            half_seconds: window / 2.0,
            clock: crate::Stopwatch::start(),
            halves: [Histogram::new(), Histogram::new()],
            epoch: AtomicU64::new(0),
        }
    }

    fn epoch_of(&self, now_seconds: f64) -> u64 {
        // audit:allow(panic) half_seconds is clamped to >= 1e-3 by new(), so the divisor is never zero
        let e = (now_seconds / self.half_seconds).floor();
        if e.is_finite() && e > 0.0 {
            if e >= u64::MAX as f64 {
                u64::MAX
            } else {
                e as u64
            }
        } else {
            0
        }
    }

    /// Advances the window to `now_seconds`, clearing any half that aged
    /// out. Exactly one racing caller wins the swap; losers observe the
    /// cleared half.
    // audit:allow(relaxed) epoch cell guards only which statistics half is current; a stale read records into the half that is about to age out, which the merge-read tolerates
    fn rotate_to(&self, now_seconds: f64) -> usize {
        let target = self.epoch_of(now_seconds);
        let mut current = self.epoch.load(Ordering::Relaxed);
        while target > current {
            match self.epoch.compare_exchange_weak(
                current,
                target,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // The winner clears state the new epoch must not see:
                    // both halves after a gap, else just the reused half.
                    if target - current >= 2 {
                        for half in &self.halves {
                            half.reset();
                        }
                    } else {
                        // audit:allow(panic) an index modulo 2 is always in bounds for the two-element halves array
                        self.halves[(target % 2) as usize].reset();
                    }
                    current = target;
                }
                Err(seen) => current = seen,
            }
        }
        (current.max(target) % 2) as usize
    }

    /// Records one sample at the tracker's own clock.
    pub fn record(&self, v: u64) {
        self.record_at(self.clock.elapsed_seconds(), v);
    }

    /// Records one sample at an explicit instant (deterministic tests).
    pub fn record_at(&self, now_seconds: f64, v: u64) {
        let half = self.rotate_to(now_seconds);
        // audit:allow(panic) rotate_to returns an epoch modulo 2, always in bounds for the two-element halves array
        self.halves[half].record(v);
    }

    /// The merged view of both window halves — everything recorded in the
    /// last one-to-two half-windows.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(self.clock.elapsed_seconds())
    }

    /// [`WindowedHistogram::snapshot`] at an explicit instant.
    pub fn snapshot_at(&self, now_seconds: f64) -> HistogramSnapshot {
        self.rotate_to(now_seconds);
        self.halves[0].snapshot().merge(&self.halves[1].snapshot())
    }

    /// Windowed quantile: `None` when nothing was recorded inside the
    /// window (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// [`WindowedHistogram::quantile`] at an explicit instant.
    pub fn quantile_at(&self, now_seconds: f64, q: f64) -> Option<u64> {
        self.snapshot_at(now_seconds).quantile(q)
    }
}

/// An SLO burn-rate tracker over a [`WindowedHistogram`].
///
/// The objective is "at most `budget` of samples may exceed
/// `threshold`" (e.g. budget 0.01 with a p99 latency target). The burn
/// rate is the windowed violating fraction divided by the budget: 1.0
/// means the error budget is being consumed exactly as fast as it
/// accrues, above 1.0 the SLO is burning down. Violations are counted at
/// bucket resolution (a bucket straddling the threshold counts as
/// violating, erring toward alarm). [`SloTracker::breached_total`] is the
/// cumulative burn counter for exposition.
#[derive(Debug)]
pub struct SloTracker {
    threshold: u64,
    budget: f64,
    window: WindowedHistogram,
    breached: Counter,
    observed: Counter,
}

impl SloTracker {
    /// `threshold` in the recorded unit (micros here), `budget` the
    /// allowed violating fraction (clamped to at least 1e-9 so the rate
    /// stays finite), windowed over `window_seconds`.
    pub fn new(threshold: u64, budget: f64, window_seconds: f64) -> SloTracker {
        let budget = if budget.is_finite() {
            budget.clamp(1e-9, 1.0)
        } else {
            1e-9
        };
        SloTracker {
            threshold,
            budget,
            window: WindowedHistogram::new(window_seconds),
            breached: Counter::new(),
            observed: Counter::new(),
        }
    }

    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Records one sample, counting it against the budget when over
    /// threshold. Returns whether the sample breached.
    pub fn record(&self, v: u64) -> bool {
        self.record_at(self.window.clock.elapsed_seconds(), v)
    }

    /// [`SloTracker::record`] at an explicit instant.
    pub fn record_at(&self, now_seconds: f64, v: u64) -> bool {
        self.window.record_at(now_seconds, v);
        self.observed.inc();
        let breached = v > self.threshold;
        if breached {
            self.breached.inc();
        }
        breached
    }

    /// Cumulative over-threshold samples since construction.
    pub fn breached_total(&self) -> u64 {
        self.breached.get()
    }

    /// Cumulative samples since construction.
    pub fn observed_total(&self) -> u64 {
        self.observed.get()
    }

    /// Windowed burn rate; `None` when the window is empty (an empty
    /// window is "no data", not "no burn").
    pub fn burn_rate(&self) -> Option<f64> {
        self.burn_rate_at(self.window.clock.elapsed_seconds())
    }

    /// [`SloTracker::burn_rate`] at an explicit instant.
    pub fn burn_rate_at(&self, now_seconds: f64) -> Option<f64> {
        let snap = self.window.snapshot_at(now_seconds);
        if snap.count == 0 {
            return None;
        }
        let violating: u64 = snap
            .buckets
            .iter()
            .filter(|&&(upper, _)| upper > self.threshold)
            .map(|&(_, n)| n)
            .fold(0u64, |acc, n| acc.saturating_add(n));
        Some((violating as f64 / snap.count as f64) / self.budget)
    }

    /// The windowed latency view backing the tracker.
    pub fn window(&self) -> &WindowedHistogram {
        &self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.sub(25);
        g.add(5);
        assert_eq!(g.get(), -10);
    }

    #[test]
    fn counter_overflow_wraps() {
        let c = Counter::new();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.add(2);
        assert_eq!(c.get(), 1, "counter adds wrap on overflow");
    }

    #[test]
    fn bucket_index_covers_edges() {
        // The linear region.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        // First log-linear bucket starts exactly at SUBS.
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        // The extremes stay in range.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Index and bounds are mutually consistent on every bucket border.
        for index in 0..HISTOGRAM_BUCKETS {
            let lower = bucket_lower_bound(index);
            let upper = bucket_upper_bound(index);
            assert_eq!(bucket_index(lower), index, "lower bound of {index}");
            assert_eq!(bucket_index(upper), index, "upper bound of {index}");
            if upper < u64::MAX {
                assert_eq!(bucket_index(upper + 1), index + 1, "border of {index}");
            }
            if lower > 0 {
                assert_eq!(bucket_index(lower - 1), index - 1, "border of {index}");
            }
        }
    }

    #[test]
    fn histogram_records_edges_without_panicking() {
        let h = Histogram::new();
        for v in [0, 1, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn quantiles_are_order_statistics_up_to_bucket_width() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Bucket estimates err high by at most 25 %.
        assert!((500..=640).contains(&p50), "p50 = {p50}");
        assert!((990..=1280).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn quantile_on_empty_is_none_not_zero() {
        // An empty histogram has no quantiles — reporting 0 would read as
        // a perfect p99 in fig16 output.
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
        // A single sample answers every quantile with its own bucket.
        h.record(700);
        let only = h.quantile(0.0);
        assert!(only.unwrap() >= 700);
        for q in [0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), only);
        }
        // The JSON exposition renders the empty case as null.
        let reg = Registry::new();
        reg.histogram("empty_h", &[]);
        let json = reg.json();
        assert!(
            json.contains(r#""p50": null, "p90": null, "p99": null"#),
            "{json}"
        );
    }

    #[test]
    fn snapshot_merge_sums_buckets() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100, 100_000] {
            a.record(v);
            b.record(v);
            b.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 9);
        assert_eq!(merged.sum, 3 * (1 + 100 + 100_000));
        for (i, &(_, n)) in merged.buckets.iter().enumerate() {
            assert_eq!(n, 3, "bucket {i}");
        }
        // Merging with an empty snapshot is the identity.
        assert_eq!(
            a.snapshot().merge(&HistogramSnapshot::default()),
            a.snapshot()
        );
    }

    #[test]
    fn windowed_histogram_slides_and_forgets() {
        let w = WindowedHistogram::new(10.0); // halves of 5 s
        w.record_at(0.1, 1_000);
        w.record_at(0.2, 1_000);
        // Same epoch: both visible.
        assert_eq!(w.snapshot_at(0.3).count, 2);
        // One half-window later both halves are still in view.
        w.record_at(6.0, 9_000);
        assert_eq!(w.snapshot_at(6.1).count, 3);
        // Two half-windows after the first samples, only the newer half
        // survives.
        let snap = w.snapshot_at(11.0);
        assert_eq!(snap.count, 1);
        assert!(snap.quantile(0.5).unwrap() >= 9_000);
        // A long gap clears everything: the window reports no quantiles
        // rather than stale ones.
        assert_eq!(w.quantile_at(60.0, 0.99), None);
        assert_eq!(w.snapshot_at(60.0).count, 0);
    }

    #[test]
    fn windowed_histogram_empty_and_single_sample() {
        let w = WindowedHistogram::new(4.0);
        assert_eq!(w.quantile_at(0.0, 0.5), None, "empty window");
        w.record_at(0.5, 42);
        let p99 = w.quantile_at(0.6, 0.99).unwrap();
        assert!((42..=52).contains(&p99), "single sample p99 = {p99}");
    }

    #[test]
    fn slo_burn_rate_tracks_windowed_violations() {
        // Objective: at most 10 % of samples over 1000 µs.
        let slo = SloTracker::new(1_000, 0.10, 10.0);
        assert_eq!(slo.burn_rate_at(0.0), None, "no data is not zero burn");
        for _ in 0..9 {
            assert!(!slo.record_at(0.1, 10));
        }
        assert!(slo.record_at(0.1, 50_000));
        // 1/10 violating at a 10 % budget → burn rate 1.0.
        let rate = slo.burn_rate_at(0.2).unwrap();
        assert!((rate - 1.0).abs() < 1e-9, "rate = {rate}");
        assert_eq!(slo.breached_total(), 1);
        assert_eq!(slo.observed_total(), 10);
        // The violations age out of the window; the cumulative counter
        // does not.
        assert_eq!(slo.burn_rate_at(100.0), None);
        assert_eq!(slo.breached_total(), 1);
    }

    #[test]
    fn registry_families_are_distinct_per_label_set() {
        let reg = Registry::new();
        reg.counter("queries", &[("scheme", "a")]).add(1);
        reg.counter("queries", &[("scheme", "b")]).add(2);
        // Label order does not matter for identity.
        reg.counter("queries", &[("x", "1"), ("scheme", "a")])
            .add(5);
        reg.counter("queries", &[("scheme", "a"), ("x", "1")])
            .add(5);
        assert_eq!(reg.snapshot().counters.len(), 3);
        assert_eq!(reg.counter("queries", &[("scheme", "a")]).get(), 1);
        assert_eq!(reg.counter("queries", &[("scheme", "b")]).get(), 2);
        assert_eq!(
            reg.counter("queries", &[("x", "1"), ("scheme", "a")]).get(),
            10
        );
    }

    #[test]
    fn exposition_is_deterministic_across_registration_order() {
        let build = |reversed: bool| {
            let reg = Registry::new();
            let mut names = vec![("alpha", 1u64), ("beta", 2)];
            if reversed {
                names.reverse();
            }
            for (name, v) in names {
                reg.counter(name, &[("scheme", "s")]).add(v);
            }
            reg.histogram("lat", &[]).record(100);
            reg.gauge("depth", &[]).set(-3);
            (reg.prometheus_text(), reg.json())
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = Registry::new();
        reg.counter("q_total", &[("scheme", "ip")]).add(3);
        reg.histogram("lat_micros", &[]).record(5);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE q_total counter\n"));
        assert!(text.contains("q_total{scheme=\"ip\"} 3\n"));
        assert!(text.contains("# TYPE lat_micros histogram\n"));
        assert!(text.contains("lat_micros_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_micros_sum 5\n"));
        assert!(text.contains("lat_micros_count 1\n"));
    }

    #[test]
    fn snapshot_roundtrips_through_restore() {
        let reg = Registry::new();
        reg.counter("c", &[("k", "v")]).add(7);
        reg.gauge("g", &[]).set(-12);
        let h = reg.histogram("h", &[("phase", "bovw")]);
        for v in [0u64, 3, 900, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let restored = Registry::restore(&snap);
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.prometheus_text(), reg.prometheus_text());
        assert_eq!(restored.json(), reg.json());
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        let reg = Registry::new();
        // Quote, backslash, and newline — each would corrupt the text
        // exposition unescaped (a raw newline splits the sample line).
        reg.counter("c", &[("k", "a\"b\\c\nd")]).inc();
        let text = reg.prometheus_text();
        assert!(
            text.contains("c{k=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "escaped rendering missing: {text:?}"
        );
        // Exactly one header and one sample line: nothing was split.
        assert_eq!(text.lines().count(), 2, "{text:?}");
        // Byte stability holds for hostile labels too.
        let again = Registry::restore(&reg.snapshot()).prometheus_text();
        assert_eq!(text, again);
    }

    #[test]
    fn json_escapes_label_values() {
        let reg = Registry::new();
        reg.counter("c", &[("k", "a\"b\\c")]).inc();
        let json = reg.json();
        // The JSON key is the Prometheus rendering (`c{k="a\"b\\c"}`)
        // escaped once more for JSON.
        assert!(json.contains(r#""c{k=\"a\\\"b\\\\c\"}": 1"#), "{json}");
    }
}
