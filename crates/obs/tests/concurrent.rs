//! Concurrency proof for the metric primitives: recording from the
//! `imageproof-parallel` worker pool must lose no updates and the final
//! sums must be exactly deterministic.

use imageproof_obs::{Counter, Gauge, Histogram, Registry};
use imageproof_parallel::{par_map, Concurrency};

#[test]
fn eight_threads_record_without_losing_updates() {
    let reg = Registry::new();
    let counter = reg.counter("items_total", &[("src", "test")]);
    let gauge = reg.gauge("balance", &[]);
    let histogram = reg.histogram("values", &[]);

    let items: Vec<u64> = (0..10_000).collect();
    par_map(Concurrency::new(8), &items, |_, &v| {
        counter.add(v);
        gauge.add(1);
        gauge.sub(1);
        histogram.record(v);
    });

    // Deterministic final sums: 0 + 1 + … + 9999.
    let expected_sum: u64 = items.iter().sum();
    assert_eq!(counter.get(), expected_sum);
    assert_eq!(gauge.get(), 0);
    assert_eq!(histogram.count(), items.len() as u64);
    assert_eq!(histogram.sum(), expected_sum);

    // The same totals are visible through fresh family handles and the
    // snapshot path.
    assert_eq!(
        reg.counter("items_total", &[("src", "test")]).get(),
        expected_sum
    );
    let snap = reg.snapshot();
    let hist = snap
        .histograms
        .values()
        .next()
        .expect("histogram registered");
    assert_eq!(hist.count, items.len() as u64);
    assert_eq!(
        hist.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        hist.count
    );
}

#[test]
fn concurrent_registration_yields_one_family_member() {
    let reg = Registry::new();
    let items: Vec<usize> = (0..512).collect();
    par_map(Concurrency::new(8), &items, |_, _| {
        reg.counter("registered_total", &[("k", "v")]).inc();
    });
    assert_eq!(reg.counter("registered_total", &[("k", "v")]).get(), 512);
    assert_eq!(
        reg.snapshot().counters.len(),
        1,
        "one family member, not 512"
    );
}

#[test]
fn standalone_primitives_are_sync() {
    // Spot-check Sync bounds: primitives shared by reference across the
    // pool without Arc.
    let c = Counter::new();
    let h = Histogram::new();
    let g = Gauge::new();
    let items: Vec<u64> = (0..1000).collect();
    par_map(Concurrency::new(4), &items, |_, &v| {
        c.inc();
        g.set(v as i64);
        h.record(v % 17);
    });
    assert_eq!(c.get(), 1000);
    assert_eq!(h.count(), 1000);
    assert!((0..1000).contains(&g.get()));
}
