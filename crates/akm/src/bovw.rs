//! Bag-of-visual-words encoding and the tf-idf impact model
//! (paper §II-A, Eqs. 1–3).

use crate::kmeans::Codebook;
use std::collections::BTreeMap;

/// A sparse BoVW vector: cluster id → frequency (`f_{I,c_i}`).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SparseBovw {
    counts: BTreeMap<u32, u32>,
}

impl SparseBovw {
    /// Encodes a feature set with the codebook's assignment rule.
    pub fn encode<'a, I>(codebook: &Codebook, features: I) -> SparseBovw
    where
        I: Iterator<Item = &'a [f32]>,
    {
        let mut counts = BTreeMap::new();
        for f in features {
            *counts.entry(codebook.assign(f)).or_insert(0) += 1;
        }
        SparseBovw { counts }
    }

    /// Builds a vector directly from (cluster, frequency) pairs.
    pub fn from_counts<I: IntoIterator<Item = (u32, u32)>>(pairs: I) -> SparseBovw {
        let mut counts = BTreeMap::new();
        for (c, f) in pairs {
            if f > 0 {
                *counts.entry(c).or_insert(0) += f;
            }
        }
        SparseBovw { counts }
    }

    /// Frequency of `cluster` (zero when absent).
    pub fn frequency(&self, cluster: u32) -> u32 {
        self.counts.get(&cluster).copied().unwrap_or(0)
    }

    /// Iterates `(cluster, frequency)` in ascending cluster order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.counts.iter().map(|(&c, &f)| (c, f))
    }

    /// Number of distinct clusters touched.
    pub fn nnz(&self) -> usize {
        self.counts.len()
    }

    /// True when no feature was encoded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// `||B_I||`: the L2 norm of the raw count vector (the normalizer in
    /// Eq. 1).
    pub fn norm(&self) -> f32 {
        let sq: f64 = self.counts.values().map(|&f| (f as f64) * (f as f64)).sum();
        sq.sqrt() as f32
    }
}

/// Corpus-level tf-idf statistics: document frequencies and cluster weights
/// `w_{c_i} = ln(n_D / n_{D,c_i})` (Eq. 1).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ImpactModel {
    n_images: u64,
    doc_freq: Vec<u32>,
    weights: Vec<f32>,
}

impl ImpactModel {
    /// Builds the model from every database image's encoding.
    pub fn build(n_clusters: usize, encodings: &[SparseBovw]) -> ImpactModel {
        let mut doc_freq = vec![0u32; n_clusters];
        for enc in encodings {
            for (c, _) in enc.iter() {
                doc_freq[c as usize] += 1;
            }
        }
        let n_images = encodings.len() as u64;
        let weights = doc_freq
            .iter()
            .map(|&df| {
                if df == 0 {
                    0.0
                } else {
                    ((n_images as f64) / (df as f64)).ln() as f32
                }
            })
            .collect();
        ImpactModel {
            n_images,
            doc_freq,
            weights,
        }
    }

    /// Number of database images (`n_D`).
    pub fn n_images(&self) -> u64 {
        self.n_images
    }

    /// `n_{D,c}` for one cluster.
    pub fn doc_freq(&self, cluster: u32) -> u32 {
        self.doc_freq[cluster as usize]
    }

    /// `w_{c}` for one cluster.
    // audit:allow(panic) owner/SP-side model: cluster ids come from the model's own vocabulary range
    pub fn weight(&self, cluster: u32) -> f32 {
        self.weights[cluster as usize]
    }

    /// Impact of `cluster` on the image encoded as `bovw`
    /// (`p_{I,c} = w_c f_{I,c} / ||B_I||`, Eq. 1).
    pub fn impact(&self, bovw: &SparseBovw, cluster: u32) -> f32 {
        let f = bovw.frequency(cluster);
        if f == 0 {
            return 0.0;
        }
        impact_value(self.weight(cluster), f, bovw.norm())
    }

    /// The full sparse impact vector `p_I`, ascending by cluster.
    pub fn impact_vector(&self, bovw: &SparseBovw) -> Vec<(u32, f32)> {
        let norm = bovw.norm();
        bovw.iter()
            .map(|(c, f)| (c, impact_value(self.weight(c), f, norm)))
            .collect()
    }
}

/// The impact formula of Eq. 1 as a single expression, so the owner, the SP,
/// and the client all compute bit-identical `f32` impacts.
#[inline]
// audit:allow(panic) f32 division never panics; a zero norm yields inf/NaN, not a crash
pub fn impact_value(weight: f32, frequency: u32, norm: f32) -> f32 {
    weight * frequency as f32 / norm
}

/// Builds the query impact vector `p_Q` from a BoVW vector and per-cluster
/// weights. The client calls this with weights taken from the (verified) VO;
/// the SP with weights from the index — both must agree exactly, hence the
/// shared helper.
pub fn impacts_with_weights(
    bovw: &SparseBovw,
    mut weight_of: impl FnMut(u32) -> f32,
) -> Vec<(u32, f32)> {
    let norm = bovw.norm();
    bovw.iter()
        .map(|(c, f)| (c, impact_value(weight_of(c), f, norm)))
        .collect()
}

/// Sparse dot product of two ascending-sorted impact vectors — the cosine
/// similarity of Eq. 3.
pub fn similarity(a: &[(u32, f32)], b: &[(u32, f32)]) -> f32 {
    let mut i = 0;
    let mut j = 0;
    let mut acc = 0.0f32;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::AkmParams;
    use imageproof_vision::DescriptorKind;

    fn axis_codebook() -> Codebook {
        // Four well-separated centers on coordinate axes of a 64-d space.
        let mut centers = vec![vec![0.0f32; 64]; 4];
        for (i, c) in centers.iter_mut().enumerate() {
            c[i] = 1.0;
        }
        Codebook::from_centers(
            DescriptorKind::Surf,
            centers,
            &AkmParams {
                n_clusters: 4,
                n_trees: 2,
                max_leaf_size: 1,
                max_checks: 8,
                iterations: 0,
                seed: 1,
            },
        )
    }

    fn feature(axis: usize) -> Vec<f32> {
        let mut f = vec![0.0f32; 64];
        f[axis] = 0.9;
        f
    }

    #[test]
    fn encode_counts_assignments() {
        let cb = axis_codebook();
        let feats = [feature(0), feature(0), feature(2)];
        let b = SparseBovw::encode(&cb, feats.iter().map(Vec::as_slice));
        assert_eq!(b.frequency(0), 2);
        assert_eq!(b.frequency(2), 1);
        assert_eq!(b.frequency(1), 0);
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn norm_matches_hand_computation() {
        let b = SparseBovw::from_counts([(0, 3), (5, 4)]);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn zero_frequency_pairs_are_dropped() {
        let b = SparseBovw::from_counts([(0, 0), (1, 2)]);
        assert_eq!(b.nnz(), 1);
    }

    #[test]
    fn weights_follow_idf() {
        // Cluster 0 appears in all 4 images (weight ln(1) = 0); cluster 1 in
        // one image (weight ln 4).
        let encodings = vec![
            SparseBovw::from_counts([(0, 1), (1, 1)]),
            SparseBovw::from_counts([(0, 1)]),
            SparseBovw::from_counts([(0, 2)]),
            SparseBovw::from_counts([(0, 1)]),
        ];
        let model = ImpactModel::build(2, &encodings);
        assert_eq!(model.weight(0), 0.0);
        assert!((model.weight(1) - (4.0f64.ln() as f32)).abs() < 1e-6);
        assert_eq!(model.doc_freq(0), 4);
        assert_eq!(model.doc_freq(1), 1);
    }

    #[test]
    fn unused_cluster_weight_is_zero() {
        let encodings = vec![SparseBovw::from_counts([(0, 1)])];
        let model = ImpactModel::build(3, &encodings);
        assert_eq!(model.weight(2), 0.0);
    }

    #[test]
    fn impact_normalizes_by_count_norm() {
        let encodings = vec![
            SparseBovw::from_counts([(0, 3), (1, 4)]),
            SparseBovw::from_counts([(1, 1)]),
        ];
        let model = ImpactModel::build(2, &encodings);
        let b = &encodings[0];
        // w_0 = ln(2/1), f = 3, ||B|| = 5.
        let expected = (2.0f64.ln() as f32) * 3.0 / 5.0;
        assert!((model.impact(b, 0) - expected).abs() < 1e-6);
        assert_eq!(model.impact(b, 1), model.impact(b, 1));
    }

    #[test]
    fn similarity_is_sparse_dot() {
        let a = vec![(1u32, 0.5f32), (3, 0.5)];
        let b = vec![(1u32, 0.2f32), (2, 0.9), (3, 0.4)];
        let s = similarity(&a, &b);
        assert!((s - (0.5 * 0.2 + 0.5 * 0.4)).abs() < 1e-6);
    }

    #[test]
    fn similarity_of_disjoint_supports_is_zero() {
        let a = vec![(1u32, 0.5f32)];
        let b = vec![(2u32, 0.5f32)];
        assert_eq!(similarity(&a, &b), 0.0);
    }

    #[test]
    fn impact_vector_orders_by_cluster() {
        let encodings = vec![SparseBovw::from_counts([(7, 1), (2, 2), (9, 3)])];
        let model = ImpactModel::build(10, &encodings);
        let v = model.impact_vector(&encodings[0]);
        let clusters: Vec<u32> = v.iter().map(|&(c, _)| c).collect();
        assert_eq!(clusters, vec![2, 7, 9]);
    }
}
