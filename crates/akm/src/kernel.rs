//! Chunked distance kernels shared by the k-d search paths (this crate's
//! [`rkd`](crate::rkd) trees and the Merkle-wrapped traversal in
//! `imageproof-mrkd`).
//!
//! ## The bit-exactness contract
//!
//! Candidate thresholds are part of the authenticated protocol: the SP and
//! the client must derive *bit-identical* `f32` distances, and the seed
//! implementation fixed them as the sequential left-to-right fold
//! `((0 + d₀²) + d₁²) + …`. The chunked kernel therefore vectorizes only
//! the independent subtract/square work (a fixed-size lane array the
//! compiler can use SIMD for) and then accumulates the squares **in the
//! exact scalar order**, so [`dist_sq`] equals [`dist_sq_scalar`] bit for
//! bit on every input — including NaN/infinity propagation.
//!
//! ## The early-exit soundness argument
//!
//! [`dist_sq_within`] may stop at a lane-chunk boundary once the partial
//! sum exceeds `limit`. Each partial sum is a prefix of the same sequential
//! fold, and adding a non-negative `f32` under round-to-nearest is
//! monotone (`fl(acc + x) >= acc` for `x >= 0`), so the full distance is
//! at least every prefix: a prefix above `limit` proves the distance is
//! above `limit`. `None` can therefore never prune a candidate the scalar
//! code would have accepted. NaN coordinates poison the accumulator and
//! fail every `> limit` checkpoint, so they fall through to `Some(NaN)` —
//! exactly the value the scalar code hands its caller.

/// Lane width of the unrolled chunk loops. Eight `f32` lanes fill a
/// 256-bit vector register and divide both descriptor widths the paper
/// uses (64-d SURF, 128-d SIFT).
pub const LANES: usize = 8;

/// Reference scalar squared Euclidean distance — the seed implementation's
/// fold, kept as the equivalence oracle for the chunked kernels.
#[inline]
pub fn dist_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Squared Euclidean distance via [`LANES`]-wide chunks, bit-identical to
/// [`dist_sq_scalar`] (see the module docs for why the accumulation order
/// is preserved).
#[inline]
// audit:allow(panic) main = len - len % LANES never exceeds len, so every slice is in bounds
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % LANES;
    // `-0.0` is the identity `f32: Sum` folds from; it keeps the empty
    // input bit-identical to the scalar oracle and is absorbed by the
    // first (non-negative) square otherwise.
    let mut acc = -0.0f32;
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        acc = add_chunk(acc, ca, cb);
    }
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Squared distance with a monotone early exit for candidate pruning.
///
/// Returns `None` as soon as a chunk-boundary partial sum exceeds `limit`
/// — a *proof* that the full distance exceeds `limit`. Otherwise returns
/// `Some(d)` with the exact full distance (bit-identical to
/// [`dist_sq_scalar`]); callers must still compare `d` against their
/// threshold, because checkpoints only fire at chunk boundaries and NaN
/// never trips them.
#[inline]
// audit:allow(panic) main = len - len % LANES never exceeds len, so every slice is in bounds
pub fn dist_sq_within(a: &[f32], b: &[f32], limit: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % LANES;
    let mut acc = -0.0f32;
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        acc = add_chunk(acc, ca, cb);
        if acc > limit {
            return None;
        }
    }
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        let d = x - y;
        acc += d * d;
    }
    Some(acc)
}

/// One chunk step: vectorizable subtract/square into a lane array, then a
/// sequential left-to-right accumulation matching the scalar fold.
#[inline(always)]
// audit:allow(panic) callers pass chunks_exact(LANES) slices, so lane indices below LANES are in bounds
fn add_chunk(mut acc: f32, ca: &[f32], cb: &[f32]) -> f32 {
    let mut sq = [0.0f32; LANES];
    for i in 0..LANES {
        let d = ca[i] - cb[i];
        sq[i] = d * d;
    }
    for &s in &sq {
        acc += s;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(rng: &mut StdRng, dim: usize) -> Vec<f32> {
        (0..dim).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
    }

    #[test]
    fn chunked_matches_scalar_bitwise_across_dims() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        // Odd tails, lane multiples, and the paper's 64/128 descriptor
        // widths.
        for dim in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 100, 128] {
            for _ in 0..20 {
                let a = random_vec(&mut rng, dim);
                let b = random_vec(&mut rng, dim);
                assert_eq!(
                    dist_sq(&a, &b).to_bits(),
                    dist_sq_scalar(&a, &b).to_bits(),
                    "dim {dim}"
                );
            }
        }
    }

    #[test]
    fn chunked_propagates_nan_and_infinity_like_scalar() {
        let mut a = vec![0.25f32; 33];
        let b = vec![0.5f32; 33];
        a[20] = f32::NAN;
        assert!(dist_sq(&a, &b).is_nan());
        // A generous limit never trips a checkpoint, so the NaN reaches the
        // caller exactly as the scalar fold would hand it over.
        assert_eq!(dist_sq_within(&a, &b, 10.0).map(f32::is_nan), Some(true));
        // A tight limit exits on the clean prefix *before* the NaN lane —
        // still sound, because the scalar caller would reject NaN anyway.
        assert_eq!(dist_sq_within(&a, &b, 0.001), None);
        a[20] = f32::INFINITY;
        assert_eq!(dist_sq(&a, &b).to_bits(), dist_sq_scalar(&a, &b).to_bits());
    }

    #[test]
    fn early_exit_never_prunes_a_true_candidate() {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        for dim in [8usize, 12, 64, 128] {
            for _ in 0..200 {
                let a = random_vec(&mut rng, dim);
                let b = random_vec(&mut rng, dim);
                let exact = dist_sq_scalar(&a, &b);
                // Limits straddling the exact distance, including the exact
                // value itself (the `<=` acceptance boundary).
                for limit in [exact * 0.25, exact * 0.99, exact, exact * 1.5] {
                    match dist_sq_within(&a, &b, limit) {
                        Some(d) => assert_eq!(d.to_bits(), exact.to_bits()),
                        None => assert!(
                            exact > limit,
                            "pruned a candidate with d={exact} <= limit={limit}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn within_accepts_exact_boundary() {
        // d == limit must not be pruned: acceptance is `d <= threshold`.
        let a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        b[0] = 2.0;
        let exact = dist_sq_scalar(&a, &b);
        assert_eq!(dist_sq_within(&a, &b, exact), Some(exact));
        assert_eq!(dist_sq_within(&a, &b, exact - 1.0), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        })]

        /// Random vectors of random width: the chunked kernel and the
        /// early-exit kernel agree with the scalar fold bit for bit.
        #[test]
        fn kernels_agree_with_scalar_on_random_inputs(
            pairs in proptest::collection::vec((any::<f32>(), any::<f32>()), 0..200),
            limit in any::<f32>(),
        ) {
            let a: Vec<f32> = pairs.iter().map(|&(x, _)| x).collect();
            let b: Vec<f32> = pairs.iter().map(|&(_, y)| y).collect();
            let exact = dist_sq_scalar(&a, &b);
            prop_assert_eq!(dist_sq(&a, &b).to_bits(), exact.to_bits());
            match dist_sq_within(&a, &b, limit) {
                Some(d) => prop_assert_eq!(d.to_bits(), exact.to_bits()),
                // NaN never takes the early exit, so a `None` implies a
                // real (comparable) distance strictly above the limit.
                None => prop_assert!(exact > limit),
            }
        }
    }
}
