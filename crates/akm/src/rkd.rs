//! Randomized k-d trees and best-bin-first search (§II-A of the paper;
//! Silpa-Anan & Hartley's randomized k-d forest as used by FLANN/AKM).
//!
//! In contrast to a regular k-d tree, each internal node picks its split
//! dimension *randomly among the dimensions with the largest variances* of
//! the points below it. A forest of such trees is searched with one global
//! priority queue ordered by lower-bound distance, stopping after a fixed
//! number of leaf visits — the approximation knob of AKM.
//!
//! The same tree shape is later wrapped by `imageproof-mrkd` with digests, so
//! node layout (arena of [`Node`] with `u32` links) and the *exact* distance
//! arithmetic used for pruning are part of this crate's public contract:
//! SP-side search and client-side verification must compute bit-identical
//! `f32` bounds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How many of the largest-variance dimensions a split samples from
/// (FLANN's classic choice).
pub const TOP_VARIANCE_DIMS: usize = 5;

/// An `f32` wrapper with total order, for use in heaps.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OrdF32(pub f32);

impl Eq for OrdF32 {}

impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One node of a randomized k-d tree, stored in an arena.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum Node {
    /// Splitting hyperplane `x[dim] = value`; children are arena indices.
    Internal {
        dim: u32,
        value: f32,
        left: u32,
        right: u32,
    },
    /// Indices (into the cluster table) of the clusters stored in this leaf.
    Leaf { clusters: Vec<u32> },
}

/// A single randomized k-d tree over a shared cluster table.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RkdTree {
    nodes: Vec<Node>,
    root: u32,
}

/// Per-query scratch reused across [`RkdTree::collect_within`] calls.
struct RangeScratch {
    /// Current contribution of each dimension to the cell-distance bound.
    diffs: Vec<f32>,
}

impl RkdTree {
    /// Builds a tree over `points` (the cluster centroids).
    ///
    /// `max_leaf_size` bounds leaf occupancy (the paper uses 2).
    pub fn build(points: &[Vec<f32>], max_leaf_size: usize, rng: &mut StdRng) -> Self {
        assert!(!points.is_empty(), "cannot index zero clusters");
        assert!(max_leaf_size >= 1, "leaves must hold at least one cluster");
        let mut nodes = Vec::new();
        let mut indices: Vec<u32> = (0..points.len() as u32).collect();
        let root = build_recursive(points, &mut indices, max_leaf_size, rng, &mut nodes);
        RkdTree { nodes, root }
    }

    /// Arena accessor (used by the Merkle wrapper).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Root node index.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Exact range search: every cluster whose distance to `query` is at
    /// most `threshold` (squared distances throughout).
    ///
    /// This is the reference implementation of the candidate-collection rule
    /// that `MRKDSearch` authenticates; the two must agree exactly.
    pub fn collect_within(
        &self,
        points: &[Vec<f32>],
        query: &[f32],
        threshold_sq: f32,
    ) -> Vec<u32> {
        let mut scratch = RangeScratch {
            diffs: vec![0.0; query.len()],
        };
        let mut out = Vec::new();
        self.range_recursive(
            self.root,
            points,
            query,
            threshold_sq,
            0.0,
            &mut scratch,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn range_recursive(
        &self,
        node: u32,
        points: &[Vec<f32>],
        query: &[f32],
        threshold_sq: f32,
        bound_sq: f32,
        scratch: &mut RangeScratch,
        out: &mut Vec<u32>,
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf { clusters } => {
                for &c in clusters {
                    // Early-exit kernel: `None` proves the distance exceeds
                    // the threshold; `Some` is the exact distance, compared
                    // exactly as the scalar code did.
                    if let Some(d) =
                        crate::kernel::dist_sq_within(query, &points[c as usize], threshold_sq)
                    {
                        if d <= threshold_sq {
                            out.push(c);
                        }
                    }
                }
            }
            Node::Internal {
                dim,
                value,
                left,
                right,
            } => {
                let d = query[*dim as usize] - value;
                let (near, far) = if d <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.range_recursive(near, points, query, threshold_sq, bound_sq, scratch, out);
                let far_bound = bound_sq - scratch.diffs[*dim as usize] + d * d;
                if far_bound <= threshold_sq {
                    let saved = scratch.diffs[*dim as usize];
                    scratch.diffs[*dim as usize] = d * d;
                    self.range_recursive(far, points, query, threshold_sq, far_bound, scratch, out);
                    scratch.diffs[*dim as usize] = saved;
                }
            }
        }
    }
}

fn build_recursive(
    points: &[Vec<f32>],
    indices: &mut [u32],
    max_leaf_size: usize,
    rng: &mut StdRng,
    nodes: &mut Vec<Node>,
) -> u32 {
    if indices.len() <= max_leaf_size {
        nodes.push(Node::Leaf {
            clusters: indices.to_vec(),
        });
        return (nodes.len() - 1) as u32;
    }

    let dim_count = points[indices[0] as usize].len();
    // Mean and variance per dimension over this node's points.
    let mut mean = vec![0.0f64; dim_count];
    for &i in indices.iter() {
        for (m, &v) in mean.iter_mut().zip(&points[i as usize]) {
            *m += v as f64;
        }
    }
    let n = indices.len() as f64;
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0f64; dim_count];
    for &i in indices.iter() {
        for ((v, m), &x) in var.iter_mut().zip(&mean).zip(&points[i as usize]) {
            let d = x as f64 - *m;
            *v += d * d;
        }
    }

    // Rank dimensions by variance; sample the split dim among the top few
    // with positive spread.
    let mut order: Vec<usize> = (0..dim_count).collect();
    order.sort_by(|&a, &b| var[b].total_cmp(&var[a]));
    let spreadable = order.iter().take_while(|&&d| var[d] > 0.0).count();
    if spreadable == 0 {
        // All points identical: a leaf, regardless of occupancy.
        nodes.push(Node::Leaf {
            clusters: indices.to_vec(),
        });
        return (nodes.len() - 1) as u32;
    }
    let pick = rng.gen_range(0..spreadable.min(TOP_VARIANCE_DIMS));
    let dim = order[pick];
    let split_value = mean[dim] as f32;

    // Partition around the mean; a degenerate partition falls back to the
    // median so progress is guaranteed.
    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    for &i in indices.iter() {
        if points[i as usize][dim] <= split_value {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    let (mut left, mut right, split_value) = if left.is_empty() || right.is_empty() {
        let mut sorted = indices.to_vec();
        sorted.sort_by(|&a, &b| points[a as usize][dim].total_cmp(&points[b as usize][dim]));
        let mid = sorted.len() / 2;
        let value = points[sorted[mid - 1] as usize][dim];
        let (l, r) = sorted.split_at(mid);
        (l.to_vec(), r.to_vec(), value)
    } else {
        (left, right, split_value)
    };

    // Reserve our slot before recursing so parents precede children.
    let my_index = nodes.len() as u32;
    nodes.push(Node::Leaf { clusters: vec![] }); // placeholder
    let left_idx = build_recursive(points, &mut left, max_leaf_size, rng, nodes);
    let right_idx = build_recursive(points, &mut right, max_leaf_size, rng, nodes);
    nodes[my_index as usize] = Node::Internal {
        dim: dim as u32,
        value: split_value,
        left: left_idx,
        right: right_idx,
    };
    my_index
}

/// Squared Euclidean distance: the chunked kernel, bit-identical to the
/// scalar fold the protocol fixed (see [`crate::kernel`]).
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    crate::kernel::dist_sq(a, b)
}

/// A forest of randomized k-d trees searched jointly (the AKM index).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RkdForest {
    trees: Vec<RkdTree>,
}

/// Result of an approximate nearest-cluster query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    pub cluster: u32,
    pub dist_sq: f32,
}

impl RkdForest {
    /// Builds `n_trees` randomized trees over the cluster table.
    pub fn build(points: &[Vec<f32>], n_trees: usize, max_leaf_size: usize, seed: u64) -> Self {
        assert!(n_trees >= 1, "forest needs at least one tree");
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = (0..n_trees)
            .map(|_| RkdTree::build(points, max_leaf_size, &mut rng))
            .collect();
        RkdForest { trees }
    }

    /// The individual trees (the Merkle wrapper authenticates each).
    pub fn trees(&self) -> &[RkdTree] {
        &self.trees
    }

    /// Best-bin-first search across all trees, visiting at most `max_checks`
    /// leaves in total (the paper stops after 32), returning the best
    /// cluster found.
    ///
    /// The distance bounds in the queue are FLANN-style accumulated
    /// plane-crossing sums — an inexpensive *over*-estimate that only
    /// affects approximation quality, never protocol soundness (soundness
    /// comes from the exact threshold collection).
    pub fn approx_nearest(
        &self,
        points: &[Vec<f32>],
        query: &[f32],
        max_checks: usize,
    ) -> Neighbor {
        let mut heap: BinaryHeap<Reverse<(OrdF32, u32, u32)>> = BinaryHeap::new();
        let mut best = Neighbor {
            cluster: u32::MAX,
            dist_sq: f32::INFINITY,
        };
        for (t, _) in self.trees.iter().enumerate() {
            heap.push(Reverse((OrdF32(0.0), t as u32, self.trees[t].root())));
        }
        let mut leaves_checked = 0usize;
        while let Some(Reverse((OrdF32(bound), t, mut node))) = heap.pop() {
            if bound > best.dist_sq {
                break;
            }
            let tree = &self.trees[t as usize];
            // Descend to a leaf, enqueueing the far side at each split.
            loop {
                match &tree.nodes()[node as usize] {
                    Node::Internal {
                        dim,
                        value,
                        left,
                        right,
                    } => {
                        let d = query[*dim as usize] - value;
                        let (near, far) = if d <= 0.0 {
                            (*left, *right)
                        } else {
                            (*right, *left)
                        };
                        heap.push(Reverse((OrdF32(bound + d * d), t, far)));
                        node = near;
                    }
                    Node::Leaf { clusters } => {
                        for &c in clusters {
                            // `None` proves d > best.dist_sq, which can
                            // neither beat the best nor tie it.
                            let Some(d) = crate::kernel::dist_sq_within(
                                query,
                                &points[c as usize],
                                best.dist_sq,
                            ) else {
                                continue;
                            };
                            if d < best.dist_sq || (d == best.dist_sq && c < best.cluster) {
                                best = Neighbor {
                                    cluster: c,
                                    dist_sq: d,
                                };
                            }
                        }
                        leaves_checked += 1;
                        break;
                    }
                }
            }
            if leaves_checked >= max_checks {
                break;
            }
        }
        best
    }

    /// Exact nearest cluster, via upper-bounding with the approximate search
    /// then exhaustively collecting candidates within that bound. This is
    /// the assignment rule the authenticated protocol fixes (the client
    /// verifies "nearest among all candidates within the threshold",
    /// §IV-A2), so the owner and SP both encode with it.
    pub fn exact_nearest(&self, points: &[Vec<f32>], query: &[f32], max_checks: usize) -> Neighbor {
        let upper = self.approx_nearest(points, query, max_checks);
        let candidates = self.trees[0].collect_within(points, query, upper.dist_sq);
        let mut best = upper;
        for c in candidates {
            let Some(d) = crate::kernel::dist_sq_within(query, &points[c as usize], best.dist_sq)
            else {
                continue;
            };
            if d < best.dist_sq || (d == best.dist_sq && c < best.cluster) {
                best = Neighbor {
                    cluster: c,
                    dist_sq: d,
                };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect())
            .collect()
    }

    fn brute_nearest(points: &[Vec<f32>], q: &[f32]) -> (u32, f32) {
        let mut best = (u32::MAX, f32::INFINITY);
        for (i, p) in points.iter().enumerate() {
            let d = dist_sq(q, p);
            if d < best.1 {
                best = (i as u32, d);
            }
        }
        best
    }

    #[test]
    fn every_cluster_appears_in_exactly_one_leaf() {
        let points = random_points(137, 16, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = RkdTree::build(&points, 2, &mut rng);
        let mut seen = vec![0u32; points.len()];
        for node in tree.nodes() {
            if let Node::Leaf { clusters } = node {
                for &c in clusters {
                    seen[c as usize] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "partition property violated");
    }

    #[test]
    fn range_search_matches_linear_scan() {
        let points = random_points(200, 8, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let tree = RkdTree::build(&points, 2, &mut rng);
        let queries = random_points(20, 8, 5);
        for q in &queries {
            for threshold in [0.01f32, 0.05, 0.2, 0.5] {
                let mut got = tree.collect_within(&points, q, threshold);
                got.sort_unstable();
                let mut expected: Vec<u32> = (0..points.len() as u32)
                    .filter(|&i| dist_sq(q, &points[i as usize]) <= threshold)
                    .collect();
                expected.sort_unstable();
                assert_eq!(got, expected, "threshold {threshold}");
            }
        }
    }

    #[test]
    fn exact_nearest_matches_brute_force() {
        let points = random_points(300, 12, 6);
        let forest = RkdForest::build(&points, 4, 2, 7);
        let queries = random_points(30, 12, 8);
        for q in &queries {
            let got = forest.exact_nearest(&points, q, 8);
            let (want_c, want_d) = brute_nearest(&points, q);
            assert_eq!(got.cluster, want_c);
            assert_eq!(got.dist_sq, want_d);
        }
    }

    #[test]
    fn approx_nearest_with_generous_checks_is_exact() {
        let points = random_points(100, 6, 9);
        let forest = RkdForest::build(&points, 4, 2, 10);
        let queries = random_points(20, 6, 11);
        for q in &queries {
            // Visiting every leaf makes best-bin-first exhaustive.
            let got = forest.approx_nearest(&points, q, 10_000);
            let (want_c, _) = brute_nearest(&points, q);
            assert_eq!(got.cluster, want_c);
        }
    }

    #[test]
    fn approx_nearest_distance_never_below_exact() {
        let points = random_points(500, 16, 12);
        let forest = RkdForest::build(&points, 2, 2, 13);
        let queries = random_points(50, 16, 14);
        for q in &queries {
            let approx = forest.approx_nearest(&points, q, 4);
            let (_, exact_d) = brute_nearest(&points, q);
            assert!(approx.dist_sq >= exact_d);
            assert!(approx.dist_sq.is_finite(), "must return something");
        }
    }

    #[test]
    fn duplicate_points_build_and_search() {
        let mut points = random_points(10, 4, 15);
        for _ in 0..20 {
            points.push(points[0].clone());
        }
        let forest = RkdForest::build(&points, 2, 2, 16);
        let got = forest.exact_nearest(&points, &points[0].clone(), 8);
        assert_eq!(got.dist_sq, 0.0);
    }

    #[test]
    fn single_point_tree() {
        let points = random_points(1, 4, 17);
        let forest = RkdForest::build(&points, 1, 2, 18);
        let q = vec![0.5f32; 4];
        assert_eq!(forest.exact_nearest(&points, &q, 4).cluster, 0);
    }

    #[test]
    fn trees_in_a_forest_differ() {
        let points = random_points(100, 8, 19);
        let forest = RkdForest::build(&points, 2, 2, 20);
        let a = format!("{:?}", forest.trees()[0].nodes()[0]);
        let b = format!("{:?}", forest.trees()[1].nodes()[0]);
        // Random split choice makes identical roots very unlikely; if this
        // ever flakes the seed can be adjusted, but determinism means it
        // either always passes or always fails.
        assert_ne!(a, b);
    }
}
