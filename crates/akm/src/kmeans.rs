//! Approximate k-means (AKM) codebook training (Philbin et al., CVPR '07;
//! paper §II-A).
//!
//! Classic Lloyd iterations, except each assignment step finds the
//! *approximate* nearest center through a randomized k-d forest rebuilt over
//! the current centers. This is what makes million-word codebooks tractable
//! and is exactly the algorithm the paper's BoVW encoding authenticates.

use crate::rkd::RkdForest;
use imageproof_vision::DescriptorKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for AKM training.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AkmParams {
    /// Codebook size (number of clusters to train).
    pub n_clusters: usize,
    /// Number of randomized k-d trees in the assignment forest (paper: 8).
    pub n_trees: usize,
    /// Maximum clusters per tree leaf (paper: 2).
    pub max_leaf_size: usize,
    /// Leaf-visit budget per assignment query (paper: 32).
    pub max_checks: usize,
    /// Lloyd iterations. Codebook quality saturates quickly; training is
    /// offline at the owner so a handful suffices.
    pub iterations: usize,
    /// RNG seed for initialization and tree randomization.
    pub seed: u64,
}

impl Default for AkmParams {
    fn default() -> Self {
        AkmParams {
            n_clusters: 1000,
            n_trees: 8,
            max_leaf_size: 2,
            max_checks: 32,
            iterations: 3,
            seed: 0xa3f9,
        }
    }
}

/// A trained visual codebook: the cluster centroids plus the forest and
/// search parameters that define the (approximate) assignment rule.
#[derive(Clone, Debug)]
pub struct Codebook {
    pub kind: DescriptorKind,
    /// Centroids, `n_clusters` rows of `kind.dim()` columns.
    pub centers: Vec<Vec<f32>>,
    /// The assignment forest built over `centers`.
    pub forest: RkdForest,
    /// Leaf-visit budget used for assignments.
    pub max_checks: usize,
}

impl Codebook {
    /// Trains a codebook with AKM over `features`.
    ///
    /// # Panics
    /// Panics when fewer features than clusters are supplied.
    pub fn train<'a, I>(kind: DescriptorKind, features: I, params: &AkmParams) -> Codebook
    where
        I: Iterator<Item = &'a [f32]>,
    {
        let data: Vec<&[f32]> = features.collect();
        assert!(
            data.len() >= params.n_clusters,
            "need at least as many features ({}) as clusters ({})",
            data.len(),
            params.n_clusters
        );
        let dim = kind.dim();
        assert!(data.iter().all(|f| f.len() == dim), "dimension mismatch");

        let mut rng = StdRng::seed_from_u64(params.seed);

        // Forgy initialization: k distinct random features.
        let mut centers: Vec<Vec<f32>> = Vec::with_capacity(params.n_clusters);
        let mut chosen = std::collections::HashSet::new();
        while centers.len() < params.n_clusters {
            let i = rng.gen_range(0..data.len());
            if chosen.insert(i) {
                centers.push(data[i].to_vec());
            }
        }

        let mut forest = RkdForest::build(
            &centers,
            params.n_trees,
            params.max_leaf_size,
            params.seed ^ 0x5eed,
        );

        for iter in 0..params.iterations {
            // Assignment (approximate) + accumulation.
            let mut sums = vec![vec![0.0f64; dim]; params.n_clusters];
            let mut counts = vec![0u64; params.n_clusters];
            for f in &data {
                let n = forest.approx_nearest(&centers, f, params.max_checks);
                let c = n.cluster as usize;
                counts[c] += 1;
                for (s, &v) in sums[c].iter_mut().zip(*f) {
                    *s += v as f64;
                }
            }
            // Update; empty clusters keep their center (standard AKM
            // behaviour — with huge codebooks re-seeding is not worth it).
            for ((center, sum), &count) in centers.iter_mut().zip(&sums).zip(&counts) {
                if count > 0 {
                    for (c, s) in center.iter_mut().zip(sum) {
                        *c = (*s / count as f64) as f32;
                    }
                }
            }
            forest = RkdForest::build(
                &centers,
                params.n_trees,
                params.max_leaf_size,
                params.seed ^ 0x5eed ^ (iter as u64 + 1),
            );
        }

        Codebook {
            kind,
            centers,
            forest,
            max_checks: params.max_checks,
        }
    }

    /// Builds a codebook directly from given centroids (used by tests and by
    /// experiments that reuse the corpus generator's latent words).
    pub fn from_centers(
        kind: DescriptorKind,
        centers: Vec<Vec<f32>>,
        params: &AkmParams,
    ) -> Codebook {
        assert!(!centers.is_empty(), "codebook cannot be empty");
        assert!(centers.iter().all(|c| c.len() == kind.dim()));
        let forest = RkdForest::build(
            &centers,
            params.n_trees,
            params.max_leaf_size,
            params.seed ^ 0x5eed,
        );
        Codebook {
            kind,
            centers,
            forest,
            max_checks: params.max_checks,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// Codebooks are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The protocol's assignment: exact nearest via threshold collection
    /// (see [`RkdForest::exact_nearest`]).
    pub fn assign(&self, feature: &[f32]) -> u32 {
        self.forest
            .exact_nearest(&self.centers, feature, self.max_checks)
            .cluster
    }

    /// Assignment together with the auxiliary threshold (squared distance to
    /// the assigned cluster) that the SP feeds to `MRKDSearch` (Alg. 5
    /// line 1).
    pub fn assign_with_threshold(&self, feature: &[f32]) -> (u32, f32) {
        let n = self
            .forest
            .exact_nearest(&self.centers, feature, self.max_checks);
        (n.cluster, n.dist_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_vision::{Corpus, CorpusConfig};

    fn tiny_params(k: usize) -> AkmParams {
        AkmParams {
            n_clusters: k,
            n_trees: 4,
            max_leaf_size: 2,
            max_checks: 16,
            iterations: 3,
            seed: 42,
        }
    }

    #[test]
    fn training_produces_requested_codebook_size() {
        let corpus = Corpus::generate(&CorpusConfig::small(DescriptorKind::Surf));
        let cb = Codebook::train(
            DescriptorKind::Surf,
            corpus.all_features(),
            &tiny_params(64),
        );
        assert_eq!(cb.len(), 64);
        assert!(cb.centers.iter().all(|c| c.len() == 64));
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = Corpus::generate(&CorpusConfig::small(DescriptorKind::Surf));
        let a = Codebook::train(
            DescriptorKind::Surf,
            corpus.all_features(),
            &tiny_params(32),
        );
        let b = Codebook::train(
            DescriptorKind::Surf,
            corpus.all_features(),
            &tiny_params(32),
        );
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn centers_reduce_quantization_error_vs_init() {
        let corpus = Corpus::generate(&CorpusConfig::small(DescriptorKind::Surf));
        let features: Vec<&[f32]> = corpus.all_features().collect();
        let trained = Codebook::train(
            DescriptorKind::Surf,
            features.iter().copied(),
            &tiny_params(32),
        );
        let init = Codebook::train(
            DescriptorKind::Surf,
            features.iter().copied(),
            &AkmParams {
                iterations: 0,
                ..tiny_params(32)
            },
        );
        let err = |cb: &Codebook| -> f64 {
            features
                .iter()
                .map(|f| cb.forest.exact_nearest(&cb.centers, f, 64).dist_sq as f64)
                .sum()
        };
        assert!(err(&trained) <= err(&init), "training must not hurt");
    }

    #[test]
    fn assignment_is_exact_nearest() {
        let corpus = Corpus::generate(&CorpusConfig::small(DescriptorKind::Surf));
        let cb = Codebook::train(
            DescriptorKind::Surf,
            corpus.all_features(),
            &tiny_params(32),
        );
        let q = &corpus.images[0].features[0];
        let assigned = cb.assign(q);
        let brute = cb
            .centers
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                crate::rkd::dist_sq(q, a).total_cmp(&crate::rkd::dist_sq(q, b))
            })
            .map(|(i, _)| i as u32)
            .expect("non-empty");
        assert_eq!(assigned, brute);
    }

    #[test]
    fn from_centers_round_trips() {
        let centers = vec![vec![0.0f32; 64], vec![1.0f32; 64]];
        let cb = Codebook::from_centers(DescriptorKind::Surf, centers, &tiny_params(2));
        assert_eq!(cb.assign(&vec![0.1f32; 64]), 0);
        assert_eq!(cb.assign(&vec![0.9f32; 64]), 1);
    }

    #[test]
    #[should_panic(expected = "need at least as many features")]
    fn too_few_features_rejected() {
        let features = [vec![0.0f32; 64]];
        let _ = Codebook::train(
            DescriptorKind::Surf,
            features.iter().map(Vec::as_slice),
            &tiny_params(5),
        );
    }
}
