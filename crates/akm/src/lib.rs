//! # imageproof-akm
//!
//! The approximate-k-means retrieval substrate of SIFT-based CBIR
//! (paper §II-A):
//!
//! * [`rkd`] — randomized k-d trees and forests with best-bin-first search,
//!   the index AKM uses for nearest-cluster queries. The tree layout here is
//!   what `imageproof-mrkd` Merkle-izes.
//! * [`kmeans`] — AKM codebook training (Lloyd iterations with approximate
//!   assignments) and the [`kmeans::Codebook`] assignment rule.
//! * [`bovw`] — sparse bag-of-visual-words encodings, tf-idf impact values
//!   (Eq. 1), and the cosine similarity of Eq. 3.
//! * [`kernel`] — chunked distance kernels (bit-identical to the scalar
//!   fold, plus a monotone early-exit variant) shared by this crate's
//!   search loops and `imageproof-mrkd`'s authenticated traversal.

pub mod bovw;
pub mod kernel;
pub mod kmeans;
pub mod rkd;

pub use bovw::{impact_value, impacts_with_weights, similarity, ImpactModel, SparseBovw};
pub use kernel::{dist_sq_scalar, dist_sq_within};
pub use kmeans::{AkmParams, Codebook};
pub use rkd::{dist_sq, Neighbor, Node, OrdF32, RkdForest, RkdTree};
