//! # imageproof-akm
//!
//! The approximate-k-means retrieval substrate of SIFT-based CBIR
//! (paper §II-A):
//!
//! * [`rkd`] — randomized k-d trees and forests with best-bin-first search,
//!   the index AKM uses for nearest-cluster queries. The tree layout here is
//!   what `imageproof-mrkd` Merkle-izes.
//! * [`kmeans`] — AKM codebook training (Lloyd iterations with approximate
//!   assignments) and the [`kmeans::Codebook`] assignment rule.
//! * [`bovw`] — sparse bag-of-visual-words encodings, tf-idf impact values
//!   (Eq. 1), and the cosine similarity of Eq. 3.

pub mod bovw;
pub mod kmeans;
pub mod rkd;

pub use bovw::{impact_value, impacts_with_weights, similarity, ImpactModel, SparseBovw};
pub use kmeans::{AkmParams, Codebook};
pub use rkd::{dist_sq, Neighbor, Node, OrdF32, RkdForest, RkdTree};
