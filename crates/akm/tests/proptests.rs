//! Property-based tests for the retrieval substrate: exactness of range
//! search and nearest-cluster assignment over arbitrary point sets.

use imageproof_akm::bovw::{similarity, SparseBovw};
use imageproof_akm::rkd::{dist_sq, RkdForest, RkdTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn points_strategy(dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, dim..=dim), 2..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Range search returns exactly the linear-scan result for arbitrary
    /// point sets, queries, and thresholds.
    #[test]
    fn range_search_is_exact(points in points_strategy(6),
                             query in proptest::collection::vec(0.0f32..1.0, 6),
                             threshold in 0.0f32..1.5) {
        let tree = RkdTree::build(&points, 2, &mut StdRng::seed_from_u64(1));
        let mut got = tree.collect_within(&points, &query, threshold);
        got.sort_unstable();
        let mut expected: Vec<u32> = (0..points.len() as u32)
            .filter(|&i| dist_sq(&query, &points[i as usize]) <= threshold)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// The protocol's exact-nearest assignment matches brute force.
    #[test]
    fn exact_nearest_is_exact(points in points_strategy(5),
                              query in proptest::collection::vec(0.0f32..1.0, 5)) {
        let forest = RkdForest::build(&points, 3, 2, 2);
        let got = forest.exact_nearest(&points, &query, 4);
        let brute = (0..points.len() as u32)
            .min_by(|&a, &b| dist_sq(&query, &points[a as usize])
                .total_cmp(&dist_sq(&query, &points[b as usize]))
                .then(a.cmp(&b)))
            .unwrap();
        prop_assert_eq!(got.cluster, brute);
    }

    /// BoVW norms follow the L2 definition for arbitrary count vectors.
    #[test]
    fn bovw_norm_is_l2(pairs in proptest::collection::vec((0u32..100, 1u32..50), 0..30)) {
        let b = SparseBovw::from_counts(pairs.clone());
        let expected: f64 = b.iter()
            .map(|(_, f)| (f as f64) * (f as f64))
            .sum::<f64>()
            .sqrt();
        prop_assert!((b.norm() as f64 - expected).abs() < 1e-3);
    }

    /// Sparse similarity is symmetric and zero on disjoint supports.
    #[test]
    fn similarity_symmetry(a in proptest::collection::vec((0u32..50, 0.0f32..1.0), 0..20),
                           b in proptest::collection::vec((0u32..50, 0.0f32..1.0), 0..20)) {
        let mut a = a; a.sort_by_key(|&(c, _)| c); a.dedup_by_key(|e| e.0);
        let mut b = b; b.sort_by_key(|&(c, _)| c); b.dedup_by_key(|e| e.0);
        prop_assert_eq!(similarity(&a, &b).to_bits(), similarity(&b, &a).to_bits());
    }
}
